"""repro.obs: spans, metrics, manifests, exports — and the guarantees
the observability layer must keep (zero numeric impact, bounded cost)."""

from __future__ import annotations

import json
import time

import pytest

from repro import graphblas as grb
from repro import obs
from repro.graphblas.substrate import registry as substrate_registry
from repro.hpcg.driver import main as driver_main, run_hpcg
from repro.hpcg.smoothers import RBGSSmoother
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.util.errors import InvalidValue


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Each test starts and ends with no active context (so a suite-wide
    ``REPRO_TRACE=1`` env context cannot leak state between tests)."""
    obs.reset()
    yield
    obs.reset()


class TestSpans:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer", "t"):
            with tracer.span("inner", "t"):
                pass
            with tracer.span("inner2", "t"):
                pass
        inner, inner2, outer = tracer.spans
        assert [s.name for s in tracer.spans] == ["inner", "inner2", "outer"]
        assert inner.parent_id == outer.id
        assert inner2.parent_id == outer.id
        assert outer.parent_id is None
        assert inner.thread == outer.thread
        # children start within the parent's extent
        assert outer.start <= inner.start <= inner2.start
        assert tracer.children_of(outer) == [inner, inner2]

    def test_wall_clock_measured(self):
        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.005)
        (span,) = tracer.spans
        assert span.wall_seconds >= 0.004
        assert span.modelled_seconds == 0.0

    def test_modelled_tick_path(self):
        tracer = Tracer()
        with tracer.span("modelled") as sp:
            sp.tick(1.5)
            sp.tick(0.25)
        (span,) = tracer.spans
        assert span.modelled_seconds == 1.75
        assert span.wall_seconds < 1.0  # the two clocks are independent

    def test_negative_tick_rejected(self):
        tracer = Tracer()
        with tracer.span("x") as sp:
            with pytest.raises(ValueError):
                sp.tick(-0.1)

    def test_set_attaches_args(self):
        tracer = Tracer()
        with tracer.span("x", args={"a": 1}) as sp:
            sp.set(b=2)
        assert tracer.spans[0].args == {"a": 1, "b": 2}

    def test_bounded_recording_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2

    def test_instant_events(self):
        tracer = Tracer()
        tracer.event("tick", "cat", {"x": 1})
        (ev,) = tracer.spans
        assert ev.wall_seconds == 0.0 and ev.args["instant"]


class TestContext:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_TRACE, raising=False)
        assert not obs.enabled()
        cm = obs.span("anything")
        assert cm is obs.NULL_SPAN
        with cm as sp:
            assert sp is None

    def test_env_arms_lazy_context(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, "1")
        obs.reset()
        assert obs.enabled()
        with obs.span("hello"):
            pass
        assert obs.current().tracer.find("hello")

    def test_explicit_run_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, "1")
        obs.reset()
        with obs.run(name="mine") as ctx:
            assert obs.current() is ctx

    def test_disabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, "1")
        obs.reset()
        with obs.disabled():
            assert not obs.enabled()
            assert obs.span("x") is obs.NULL_SPAN
            assert obs.metrics_registry() is None
        assert obs.enabled()

    def test_deactivate_out_of_order_raises(self):
        a = obs.RunContext()
        b = obs.RunContext()
        obs.activate(a)
        obs.activate(b)
        with pytest.raises(ValueError):
            obs.deactivate(a)
        obs.deactivate(b)
        obs.deactivate(a)


class TestMetrics:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("ops", "op count").inc(3, fmt="csr")
        reg.counter("ops").inc(1, fmt="sellcs")
        reg.gauge("residual", "last residual").set(1e-7)
        h = reg.histogram("latency", "seconds", buckets=(0.1, 1.0))
        h.observe(0.05, kind="solve")
        h.observe(2.0, kind="solve")
        s = reg.series("trajectory", "residuals")
        for v in (3.0, 2.0, 1.0):
            s.observe(v)
        return reg

    def test_snapshot_round_trip_through_json(self):
        snapshot = self._populated().snapshot()
        wire = json.loads(json.dumps(snapshot))
        rebuilt = MetricsRegistry.from_snapshot(wire)
        assert rebuilt.snapshot() == snapshot

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(InvalidValue):
            reg.gauge("x")

    def test_series_bounded(self):
        reg = MetricsRegistry()
        s = reg.series("short", maxlen=3)
        for v in range(5):
            s.observe(float(v))
        assert s.values() == [2.0, 3.0, 4.0]
        assert s._sample_dicts()[0]["dropped"] == 2

    def test_prometheus_exposition(self):
        text = self._populated().to_prometheus()
        assert "# TYPE ops counter" in text
        assert 'ops{fmt="csr"} 3.0' in text
        assert 'latency_bucket{kind="solve",le="+Inf"} 2' in text
        assert "latency_count" in text
        # series exported as a gauge of its last value
        assert "trajectory 1.0" in text


class TestExport:
    def test_chrome_trace_schema(self, tmp_path):
        with obs.run(name="t") as ctx:
            with obs.span("parent", "cat") as sp:
                sp.tick(0.5)
                with obs.span("child", "cat"):
                    pass
            obs.event("marker", "cat")
        payload = obs.export.trace_payload(ctx.tracer, run_id=ctx.run_id)
        obs.export.validate_chrome_trace(payload)
        path = tmp_path / "trace.json"
        obs.export.write_trace(str(path), ctx)
        obs.export.validate_file(str(path), "trace")
        data = json.loads(path.read_text())
        events = {e["name"]: e for e in data["traceEvents"]}
        assert events["parent"]["ph"] == "X"
        assert events["parent"]["args"]["modelled_seconds"] == 0.5
        assert events["child"]["args"]["parent_id"]
        assert events["marker"]["ph"] == "i"
        # wall-clock containment: child inside parent
        p, c = events["parent"], events["child"]
        assert p["ts"] <= c["ts"]
        assert c["ts"] + c["dur"] <= p["ts"] + p["dur"] + 1e-6

    def test_metrics_artifact(self, tmp_path):
        with obs.run() as ctx:
            ctx.metrics.counter("n").inc(2)
        path = tmp_path / "metrics.json"
        obs.export.write_metrics(str(path), ctx)
        obs.export.validate_file(str(path), "metrics")

    def test_manifest_artifact(self, tmp_path):
        with obs.run() as ctx:
            ctx.manifest.record_seed("s", 7)
            ctx.manifest.record_decision(chosen="csr", reason="pin")
            manifest = ctx.build_manifest(extra="yes")
        path = tmp_path / "manifest.json"
        obs.export.write_manifest(str(path), manifest)
        obs.export.validate_file(str(path), "manifest")
        data = json.loads(path.read_text())
        assert data["seeds"] == {"s": 7}
        assert data["config"]["extra"] == "yes"

    def test_invalid_trace_rejected(self):
        with pytest.raises(InvalidValue):
            obs.export.validate_chrome_trace({"traceEvents": []})
        with pytest.raises(InvalidValue):
            obs.export.validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 1,
                                  "tid": 0, "ts": 0.0}]})  # no dur


class TestManifest:
    def test_captures_forced_toggle_combination(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUBSTRATE", "sellcs")
        monkeypatch.setenv("REPRO_FUSED", "0")
        with obs.run() as ctx:
            manifest = ctx.build_manifest()
        obs.validate_manifest(manifest)
        assert manifest["environment"]["REPRO_SUBSTRATE"] == "sellcs"
        assert manifest["environment"]["REPRO_FUSED"] == "0"
        assert manifest["toggles"]["substrate_force"] == "sellcs"
        assert manifest["toggles"]["fused"] is False

    def test_selection_decisions_carry_reasons(self, monkeypatch, problem4):
        monkeypatch.delenv("REPRO_SUBSTRATE", raising=False)
        csr = problem4.A.to_scipy().tocsr()
        with obs.run() as ctx:
            substrate_registry.resolve(csr)                    # heuristic
            substrate_registry.resolve(csr, request="sellcs")  # pin
            monkeypatch.setenv("REPRO_SUBSTRATE", "csr")
            substrate_registry.resolve(csr)                    # env force
            reasons = [d["reason"] for d in ctx.manifest.decisions]
            chosen = [d["chosen"] for d in ctx.manifest.decisions]
        assert reasons == ["heuristic", "pin", "env"]
        assert chosen[1] == "sellcs" and chosen[2] == "csr"
        # decisions double as trace events
        assert len(ctx.tracer.find("substrate_selection")) == 3

    def test_decisions_free_when_disabled(self, problem4):
        csr = problem4.A.to_scipy().tocsr()
        assert substrate_registry.resolve(csr) == "csr"  # no context: no-op


class TestSolverIntegration:
    def test_mg_spans_nest_under_cg_iterations(self):
        with obs.run() as ctx:
            result = run_hpcg(8, max_iters=3, mg_levels=2,
                              validate_symmetry=False)
        assert result.cg.iterations == 3
        spans = {s.id: s for s in ctx.tracer.spans}
        cg_ids = {s.id for s in ctx.tracer.find("cg/iteration")}
        assert len(cg_ids) == 3
        mg0 = ctx.tracer.find("mg/L0")
        assert len(mg0) == 3
        assert all(s.parent_id in cg_ids for s in mg0)
        mg1 = ctx.tracer.find("mg/L1")
        assert all(spans[s.parent_id].name == "mg/L0" for s in mg1)
        sweeps = ctx.tracer.find("smoother/rbgs_sweep")
        assert sweeps and all(s.args["level"] in (0, 1) for s in sweeps)
        solve = ctx.tracer.find("hpcg/solve")
        assert len(solve) == 1 and solve[0].args["repetition"] == 0

    def test_metrics_capture_residuals_and_bytes(self):
        with obs.run() as ctx:
            result = run_hpcg(8, max_iters=4, mg_levels=2,
                              validate_symmetry=False)
        traj = ctx.metrics.get("cg_residual").values()
        assert traj == result.cg.residuals       # index 0 = initial
        by_fmt = ctx.metrics.get("graphblas_bytes_by_format")
        assert sum(s["value"] for s in by_fmt._sample_dicts()) > 0
        assert ctx.metrics.get("cg_iterations_total").value() == 4.0

    def test_residuals_byte_identical_traced_vs_untraced(self):
        untraced = run_hpcg(8, max_iters=5, mg_levels=2,
                            validate_symmetry=False)
        with obs.run():
            traced = run_hpcg(8, max_iters=5, mg_levels=2,
                              validate_symmetry=False)
        assert traced.cg.residuals == untraced.cg.residuals
        assert traced.cg.normr == untraced.cg.normr

    def test_overhead_smoke(self):
        """A traced solve stays within 5% (+ small absolute slack) of an
        untraced one — the near-zero-cost claim, on the tier-1 size."""
        def solve_seconds(traced: bool) -> float:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                if traced:
                    with obs.run():
                        run_hpcg(16, max_iters=10, validate_symmetry=False)
                else:
                    with obs.disabled():
                        run_hpcg(16, max_iters=10, validate_symmetry=False)
                best = min(best, time.perf_counter() - t0)
            return best

        solve_seconds(False)                     # warm every cache once
        untraced = solve_seconds(False)
        traced = solve_seconds(True)
        assert traced <= untraced * 1.05 + 0.05, (
            f"tracing overhead too high: {traced:.4f}s traced vs "
            f"{untraced:.4f}s untraced"
        )


class TestFusedLevelTag:
    def test_fused_events_carry_owning_level(self, problem8):
        from repro.hpcg.coloring import color_masks, lattice_coloring

        colors = color_masks(lattice_coloring(problem8.grid, "27pt"))
        smoother = RBGSSmoother(problem8.A, problem8.A_diag, colors,
                                fused=True).set_level(2)
        z = grb.Vector.dense(problem8.n)
        r = problem8.b.dup()
        log = grb.backend.EventLog()
        with grb.backend.collect(log):     # no enclosing labelled scope
            smoother.forward(z, r)
        fused = [e for e in log.events if e.op == "fused_mxv_lambda"]
        assert fused and all(e.label == "rbgs@L2" for e in fused)


class TestDistIntegration:
    def test_superstep_spans_exposed_vs_hidden(self, problem8):
        from repro.dist.refdist import RefDistRun

        with obs.run() as ctx:
            run = RefDistRun(problem8, nprocs=2, mg_levels=2,
                             comm_mode="overlap")
            result = run.run_cg(max_iters=3)
        steps = [s for s in ctx.tracer.find(category="dist")
                 if s.name.startswith("superstep/")]
        assert steps
        assert all(s.args["mode"] == "overlap" for s in steps)
        full = sum(s.args["comm_full"] for s in steps)
        exposed = sum(s.args["comm_exposed"] for s in steps)
        hidden = sum(s.args["comm_hidden"] for s in steps)
        assert full == pytest.approx(exposed + hidden)
        assert full == pytest.approx(result.comm_seconds)
        assert exposed == pytest.approx(result.exposed_comm_seconds)
        assert hidden > 0          # the overlap engine hid something
        # the run span's modelled clock equals the result's
        (top,) = ctx.tracer.find("dist/run_cg")
        assert top.modelled_seconds == pytest.approx(
            result.modelled_seconds)

    def test_result_carries_manifest_and_metrics(self, problem8):
        from repro.dist.refdist import RefDistRun

        with obs.run():
            result = RefDistRun(problem8, nprocs=2,
                                mg_levels=2).run_cg(max_iters=2)
        obs.validate_manifest(result.manifest)
        assert result.manifest["config"]["dist"]["backend"] == "ref-3d"
        assert result.metrics["supersteps"] == result.tracker.num_syncs
        assert result.metrics["comm_bytes"] == result.tracker.total_bytes

    def test_result_attachments_none_when_disabled(self, problem8):
        from repro.dist.refdist import RefDistRun

        with obs.disabled():     # robust under a suite-wide REPRO_TRACE=1
            result = RefDistRun(problem8, nprocs=2,
                                mg_levels=2).run_cg(max_iters=2)
        assert result.manifest is None and result.metrics is None


class TestDriverCLI:
    def test_artifact_flags(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        manifest = tmp_path / "manifest.json"
        rc = driver_main([
            "--nx", "8", "--iters", "3", "--mg-levels", "2",
            "--trace-json", str(trace),
            "--metrics-json", str(metrics),
            "--manifest-json", str(manifest),
            "--report",
        ])
        assert rc == 0
        for path, kind in ((trace, "trace"), (metrics, "metrics"),
                           (manifest, "manifest")):
            obs.export.validate_file(str(path), kind)
        out = capsys.readouterr().out
        assert "Observability" in out and "observability: run" in out

    def test_obs_validate_cli(self, tmp_path):
        from repro.obs.__main__ import main as validate_main

        with obs.run() as ctx:
            with obs.span("x"):
                pass
        trace = tmp_path / "trace.json"
        obs.export.write_trace(str(trace), ctx)
        assert validate_main(["validate", "--trace", str(trace)]) == 0
        trace.write_text("{\"traceEvents\": []}")
        assert validate_main(["validate", "--trace", str(trace)]) == 1
        assert validate_main(["validate"]) == 2
