"""The executed 2D block distribution (paper §VII-B solution ii)."""

import numpy as np
import pytest

from repro.dist import Hybrid2DRun, HybridALPRun
from repro.hpcg.driver import run_hpcg
from repro.hpcg.problem import generate_problem
from repro.util.errors import InvalidValue


@pytest.fixture(scope="module")
def prob():
    return generate_problem(8, 16, 16)  # divides for p=4 in all backends


class TestHybrid2D:
    def test_requires_square_node_count(self, prob):
        with pytest.raises(InvalidValue):
            Hybrid2DRun(prob, nprocs=6)

    def test_residuals_match_serial(self, prob):
        res = Hybrid2DRun(prob, nprocs=4, mg_levels=3).run_cg(max_iters=4)
        serial = run_hpcg(nx=0, problem=prob, max_iters=4, mg_levels=3,
                          validate_symmetry=False)
        np.testing.assert_allclose(res.residuals, serial.cg.residuals,
                                   rtol=1e-12)

    def test_max_send_matches_formula(self, prob):
        """Per-superstep send = n/√p (√p−1) values (paper formula)."""
        res = Hybrid2DRun(prob, nprocs=4, mg_levels=1).run_cg(
            max_iters=1, use_mg=False
        )
        n, q = prob.n, 2
        assert res.tracker.max_send_per_node() == n // q * (q - 1) * 8

    def test_less_traffic_than_1d(self, prob):
        res2d = Hybrid2DRun(prob, nprocs=4, mg_levels=3).run_cg(max_iters=2)
        res1d = HybridALPRun(prob, nprocs=4, mg_levels=3).run_cg(max_iters=2)
        assert res2d.comm_bytes < res1d.comm_bytes

    def test_twice_the_barriers_of_1d(self, prob):
        """The price of solution ii: two supersteps per mxv."""
        res2d = Hybrid2DRun(prob, nprocs=4, mg_levels=1).run_cg(
            max_iters=1, use_mg=False)
        res1d = HybridALPRun(prob, nprocs=4, mg_levels=1).run_cg(
            max_iters=1, use_mg=False)
        syncs_2d = sum(1 for s in res2d.tracker.supersteps
                       if s.label == "spmv2d")
        syncs_1d = sum(1 for s in res1d.tracker.supersteps
                       if s.label == "spmv")
        assert syncs_2d == 2 * syncs_1d

    def test_backend_name(self, prob):
        res = Hybrid2DRun(prob, nprocs=4, mg_levels=2).run_cg(max_iters=1)
        assert res.backend == "alp-2d"

    def test_comm_ratio_vs_1d_is_constant_factor_only(self):
        """Both distributions stay Θ(n): the 1D/2D per-node send ratio is
        (p−1)√p / (p(√p−1)) — 1.5 at p=4, 4/3 at p=9, tending to 1.
        This *is* the paper's point: solution ii "only partially
        alleviat[es] the communication bottleneck"."""
        ratios = {}
        for p, nx in ((4, (8, 16, 16)), (9, (24, 24, 24))):
            problem = generate_problem(*nx)
            r1 = HybridALPRun(problem, nprocs=p, mg_levels=1).run_cg(
                max_iters=1, use_mg=False)
            r2 = Hybrid2DRun(problem, nprocs=p, mg_levels=1).run_cg(
                max_iters=1, use_mg=False)
            ratios[p] = (r1.tracker.max_send_per_node()
                         / r2.tracker.max_send_per_node())
        assert ratios[4] == pytest.approx(1.5, rel=0.01)
        assert ratios[9] == pytest.approx(4.0 / 3.0, rel=0.01)
