"""Experiment regenerators: every table/figure produces the paper's shape."""

import numpy as np
import pytest

from repro.experiments import ablations, fig1, fig2, fig3, fig4_7, table1, table2
from repro.experiments.__main__ import main as experiments_main
from repro.hpcg.problem import generate_problem
from repro.perf import collect_op_stream


@pytest.fixture(scope="module")
def stream16():
    return collect_op_stream(generate_problem(16), mg_levels=4, iterations=3)


class TestTable1:
    def test_exponents_match_paper(self):
        rows = table1.run(local_sizes=(8, 12, 16), procs=(2, 4))
        fits = table1.verify(rows)
        assert fits["alp_comm_exponent"] == pytest.approx(1.0, abs=0.05)
        assert fits["ref_comm_exponent"] == pytest.approx(2.0 / 3.0, abs=0.1)

    def test_work_balanced(self):
        rows = table1.run(local_sizes=(8,), procs=(2, 4))
        fits = table1.verify(rows)
        assert fits["work_balance"] <= 1.1

    def test_sync_counts_constant(self):
        rows = table1.run(local_sizes=(8, 12), procs=(2,))
        assert all(r.alp_syncs_per_mxv == 1.0 for r in rows)
        assert all(r.ref_syncs_per_mxv == 1.0 for r in rows)

    def test_alp_matches_formula_exactly(self):
        rows = table1.run(local_sizes=(8,), procs=(2, 4))
        for r in rows:
            assert r.alp_comm_values == pytest.approx(r.alp_formula, rel=0.01)

    def test_render(self):
        rows = table1.run(local_sizes=(8,), procs=(2,))
        text = table1.render(rows)
        assert "Table I" in text and "exponent" in text


class TestTable2:
    def test_render_contains_machines(self):
        text = table2.render(table2.run())
        assert "Kunpeng 920-4826" in text and "Xeon Gold 6238T" in text


class TestFig1(object):
    def test_all_shape_claims(self, stream16):
        result = fig1.run(stream=stream16)
        claims = result.shape_claims()
        failures = [k for k, v in claims.items()
                    if not k.startswith("_") and not v]
        assert not failures, failures

    def test_render(self, stream16):
        text = fig1.render(fig1.run(stream=stream16))
        assert "Figure 1" in text and "[ok]" in text and "FAIL" not in text


class TestFig2:
    def test_all_shape_claims(self, stream16):
        result = fig2.run(stream=stream16)
        claims = result.shape_claims()
        assert all(claims.values()), claims

    def test_placements_follow_paper(self):
        labels = [p[0] for p in fig2.PLACEMENTS]
        assert "44 - 1S" in labels and "88 - 2S" in labels


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(local_nx=24, iterations=2)

    def test_all_shape_claims(self, result):
        claims = result.shape_claims()
        assert all(claims.values()), claims

    def test_ref_flat(self, result):
        ref = np.array(result.ref_seconds)
        assert ref.max() / ref.min() < 1.05  # the paper's "at most 5%"

    def test_render(self, result):
        assert "Figure 3" in fig3.render(result)


class TestFig4to7:
    @pytest.fixture(scope="class")
    def fig6_result(self):
        return fig4_7.run_fig6(local_nx=8, iterations=2, nodes=(2, 4))

    @pytest.fixture(scope="class")
    def fig7_result(self):
        return fig4_7.run_fig7(local_nx=8, iterations=2, nodes=(2, 4))

    def test_fig4_claims(self, stream16):
        result = fig4_7.run_fig4(stream=stream16)
        assert all(result.shape_claims().values())

    def test_fig5_claims(self, stream16):
        result = fig4_7.run_fig5(stream=stream16)
        assert all(result.shape_claims().values())

    def test_fig6_claims(self, fig6_result):
        assert all(fig6_result.shape_claims().values())

    def test_fig7_claims(self, fig7_result):
        assert all(fig7_result.shape_claims().values())

    def test_cross_figure_claims(self, fig6_result, fig7_result):
        claims = fig4_7.cross_figure_claims(fig6_result, fig7_result)
        assert all(claims.values()), claims

    def test_render(self, fig6_result):
        text = fig4_7.render(fig6_result)
        assert "fig6" in text and "MG%" in text


class TestAblations:
    def test_distribution_ordering(self):
        rows = {r.scheme: r.max_send_values
                for r in ablations.distribution_ablation(local_nx=8, p=4)}
        assert rows["geometric 3D (Ref)"] < rows["black-box BFS (solution iv)"]
        assert rows["black-box BFS (solution iv)"] < rows["1D block-cyclic (ALP)"]
        assert rows["2D block (solution ii)"] < rows["1D block-cyclic (ALP)"]

    def test_fusion_saves_traffic_identically(self):
        res = ablations.fusion_ablation(nx=8, sweeps=1)
        assert res.identical_result
        assert 0.1 < res.savings < 0.5

    def test_smoother_ordering(self):
        rows = {r.smoother: r for r in ablations.smoother_ablation(nx=8)}
        assert all(r.converged for r in rows.values())
        # SYMGS <= RBGS < Jacobi in iteration count (paper Section III-A)
        assert rows["symgs (sequential)"].iterations <= rows["rbgs"].iterations
        assert rows["rbgs"].iterations < rows["jacobi"].iterations

    def test_coloring_natural_optimal(self):
        rows = {r.order: r.colors for r in ablations.coloring_ablation(nx=8)}
        assert rows["natural (paper)"] == 8
        assert rows["lattice parity"] == 8

    def test_render(self):
        text = ablations.render(ablations.run(local_nx=8))
        assert "Ablation A" in text and "Ablation D" in text


class TestCli:
    def test_table2_via_cli(self, capsys):
        assert experiments_main(["table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_fig1_via_cli(self, capsys):
        assert experiments_main(["fig1", "--nx", "8", "--iters", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out
