"""BSP cost model."""

import numpy as np
import pytest

from repro.dist.bsp import (
    ARM_CLUSTER_NODE,
    BSPMachine,
    X86_NODE,
    bsp_time,
    tracker_comm_time,
    tracker_exposed_comm_time,
)
from repro.dist.comm import CommTracker
from repro.util.errors import InvalidValue


class TestMachine:
    def test_superstep_time_components(self):
        m = BSPMachine("toy", mem_bandwidth=100.0, net_bandwidth=10.0,
                       latency=1.0)
        # 200 work bytes / 100 + 50 h bytes / 10 + 1 = 2 + 5 + 1
        assert m.superstep_time(200, 50) == pytest.approx(8.0)

    def test_zero_comm_still_costs_latency(self):
        m = BSPMachine("toy", 100.0, 10.0, 0.5)
        assert m.superstep_time(0, 0) == 0.5

    def test_invalid_rates(self):
        with pytest.raises(InvalidValue):
            BSPMachine("bad", 0.0, 1.0, 0.0)
        with pytest.raises(InvalidValue):
            BSPMachine("bad", 1.0, 1.0, -1.0)

    def test_presets_sane(self):
        assert ARM_CLUSTER_NODE.mem_bandwidth > X86_NODE.mem_bandwidth
        assert ARM_CLUSTER_NODE.net_bandwidth == X86_NODE.net_bandwidth


class TestBspTime:
    def test_accumulates(self):
        t = CommTracker(2)
        t.send(0, 1, 100)
        t.sync()
        t.send(1, 0, 200)
        t.sync()
        m = BSPMachine("toy", 1000.0, 100.0, 0.0)
        total = bsp_time(m, t.supersteps, [500.0, 1000.0])
        # (500/1000 + 100/100) + (1000/1000 + 200/100)
        assert total == pytest.approx(0.5 + 1.0 + 1.0 + 2.0)

    def test_tracker_comm_time(self):
        t = CommTracker(2)
        t.send(0, 1, 100)
        t.sync()
        m = BSPMachine("toy", 1000.0, 100.0, 0.25)
        assert tracker_comm_time(m, t) == pytest.approx(1.0 + 0.25)


class TestOverlapPricing:
    M = BSPMachine("toy", mem_bandwidth=100.0, net_bandwidth=10.0,
                   latency=1.0)

    def test_no_overlap_is_the_eager_sum(self):
        assert self.M.superstep_time(200, 50, 0.0) == pytest.approx(8.0)

    def test_full_overlap_is_max_of_work_and_comm(self):
        # work 200B -> 2s; comm 50B/10 + 1 = 6s; fully-overlapped work
        # hides min(2, 6) = 2s of wire time: total max(2, 6) = 6s
        assert self.M.superstep_time(200, 50, 200) == pytest.approx(6.0)
        # comm-bound the other way: work 800B -> 8s > comm 6s
        assert self.M.superstep_time(800, 50, 800) == pytest.approx(8.0)

    def test_partial_overlap(self):
        # only 100B (1s) of the 200B work overlaps: hides 1s of 6s comm
        assert self.M.superstep_time(200, 50, 100) == pytest.approx(7.0)

    def test_efficiency_scales_the_hiding(self):
        assert self.M.superstep_time(
            200, 50, 100, overlap_efficiency=0.5) == pytest.approx(7.5)
        assert self.M.superstep_time(
            200, 50, 100, overlap_efficiency=0.0) == pytest.approx(8.0)

    def test_machine_level_efficiency_default(self):
        half = BSPMachine("half", 100.0, 10.0, 1.0, overlap_efficiency=0.5)
        assert half.superstep_time(200, 50, 100) == pytest.approx(7.5)

    def test_exposed_and_hidden_partition_comm_time(self):
        comm = self.M.comm_time(50)
        hidden = self.M.hidden_comm_time(50, 100)
        exposed = self.M.exposed_comm_time(50, 100)
        assert comm == pytest.approx(6.0)
        assert hidden + exposed == pytest.approx(comm)
        assert hidden == pytest.approx(1.0)

    def test_latency_is_hideable(self):
        # a zero-byte superstep still costs L eagerly, but a posted one
        # fully hides behind enough overlapped compute
        assert self.M.superstep_time(0, 0, 0) == pytest.approx(1.0)
        assert self.M.superstep_time(0, 0, 1000) == pytest.approx(0.0)

    def test_invalid_efficiency(self):
        with pytest.raises(InvalidValue):
            BSPMachine("bad", 1.0, 1.0, 0.0, overlap_efficiency=1.5)
        with pytest.raises(InvalidValue):
            self.M.superstep_time(1, 1, 1, overlap_efficiency=-0.1)

    def test_presets_default_full_efficiency(self):
        assert X86_NODE.overlap_efficiency == 1.0
        assert ARM_CLUSTER_NODE.overlap_efficiency == 1.0

    def test_bsp_time_uses_overlap_tags(self):
        t = CommTracker(2)
        t.send(0, 1, 100)
        t.wait(t.post().overlap(500.0))     # 0.5s hides 0.5s of 2s comm
        m = BSPMachine("toy", 1000.0, 100.0, 1.0)
        overlapped = bsp_time(m, t.supersteps, [500.0])
        eager = bsp_time(m, t.supersteps, [500.0], use_overlap=False)
        assert eager == pytest.approx(0.5 + 1.0 + 1.0)
        assert overlapped == pytest.approx(eager - 0.5)

    def test_tracker_exposed_comm_time(self):
        t = CommTracker(2)
        t.send(0, 1, 100)
        t.wait(t.post().overlap(500.0))
        t.send(1, 0, 100)
        t.sync()                            # eager: nothing hidden
        m = BSPMachine("toy", 1000.0, 100.0, 1.0)
        assert tracker_comm_time(m, t) == pytest.approx(4.0)
        assert tracker_exposed_comm_time(m, t) == pytest.approx(3.5)
