"""BSP cost model."""

import numpy as np
import pytest

from repro.dist.bsp import ARM_CLUSTER_NODE, BSPMachine, X86_NODE, bsp_time, tracker_comm_time
from repro.dist.comm import CommTracker
from repro.util.errors import InvalidValue


class TestMachine:
    def test_superstep_time_components(self):
        m = BSPMachine("toy", mem_bandwidth=100.0, net_bandwidth=10.0,
                       latency=1.0)
        # 200 work bytes / 100 + 50 h bytes / 10 + 1 = 2 + 5 + 1
        assert m.superstep_time(200, 50) == pytest.approx(8.0)

    def test_zero_comm_still_costs_latency(self):
        m = BSPMachine("toy", 100.0, 10.0, 0.5)
        assert m.superstep_time(0, 0) == 0.5

    def test_invalid_rates(self):
        with pytest.raises(InvalidValue):
            BSPMachine("bad", 0.0, 1.0, 0.0)
        with pytest.raises(InvalidValue):
            BSPMachine("bad", 1.0, 1.0, -1.0)

    def test_presets_sane(self):
        assert ARM_CLUSTER_NODE.mem_bandwidth > X86_NODE.mem_bandwidth
        assert ARM_CLUSTER_NODE.net_bandwidth == X86_NODE.net_bandwidth


class TestBspTime:
    def test_accumulates(self):
        t = CommTracker(2)
        t.send(0, 1, 100)
        t.sync()
        t.send(1, 0, 200)
        t.sync()
        m = BSPMachine("toy", 1000.0, 100.0, 0.0)
        total = bsp_time(m, t.supersteps, [500.0, 1000.0])
        # (500/1000 + 100/100) + (1000/1000 + 200/100)
        assert total == pytest.approx(0.5 + 1.0 + 1.0 + 2.0)

    def test_tracker_comm_time(self):
        t = CommTracker(2)
        t.send(0, 1, 100)
        t.sync()
        m = BSPMachine("toy", 1000.0, 100.0, 0.25)
        assert tracker_comm_time(m, t) == pytest.approx(1.0 + 0.25)
