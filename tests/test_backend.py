"""Instrumentation backend: collectors, labels, event logs."""

from repro import graphblas as grb
from repro.graphblas import backend
from repro.graphblas.backend import EventLog, PerfEvent


class TestCollect:
    def test_no_collector_by_default(self):
        assert not backend.active()
        backend.record("mxv", 1, 1, 1, 1)  # must not raise

    def test_collect_scoped(self):
        log = EventLog()
        with backend.collect(log):
            assert backend.active()
            backend.record("mxv", 2, 10, 20, 160)
        assert not backend.active()
        assert log.count() == 1

    def test_nested_collectors_restore(self):
        outer, inner = EventLog(), EventLog()
        with backend.collect(outer):
            backend.record("a", 1, 0, 0, 0)
            with backend.collect(inner):
                backend.record("b", 1, 0, 0, 0)
            backend.record("c", 1, 0, 0, 0)
        assert [e.op for e in outer.events] == ["a", "c"]
        assert [e.op for e in inner.events] == ["b"]


class TestLabels:
    def test_label_applied(self):
        log = EventLog()
        with backend.collect(log), backend.labelled("rbgs"):
            backend.record("mxv", 1, 1, 1, 1)
        assert log.events[0].label == "rbgs"

    def test_nested_labels_innermost_wins(self):
        log = EventLog()
        with backend.collect(log), backend.labelled("outer"):
            with backend.labelled("inner"):
                backend.record("mxv", 1, 1, 1, 1)
            backend.record("mxv", 1, 1, 1, 1)
        assert [e.label for e in log.events] == ["inner", "outer"]

    def test_label_cleared_after(self):
        log = EventLog()
        with backend.collect(log):
            with backend.labelled("x"):
                pass
            backend.record("mxv", 1, 1, 1, 1)
        assert log.events[0].label == ""


class TestEventLog:
    def test_totals_by_field(self):
        log = EventLog()
        log(PerfEvent("mxv", 2, 10, 20, 100, "a"))
        log(PerfEvent("dot", 1, 0, 8, 32, "b"))
        assert log.total("flops") == 28
        assert log.total("bytes", op="mxv") == 100
        assert log.total("flops", label="b") == 8

    def test_count_filter(self):
        log = EventLog()
        log(PerfEvent("mxv", 1, 1, 1, 1))
        log(PerfEvent("mxv", 1, 1, 1, 1))
        log(PerfEvent("dot", 1, 1, 1, 1))
        assert log.count("mxv") == 2
        assert log.count() == 3

    def test_clear(self):
        log = EventLog()
        log(PerfEvent("mxv", 1, 1, 1, 1))
        log.clear()
        assert log.count() == 0

    def test_by_format_aggregates(self):
        log = EventLog()
        log(PerfEvent("mxv", 1, 1, 1, 100, fmt="csr"))
        log(PerfEvent("mxv", 1, 1, 1, 50, fmt="csr"))
        log(PerfEvent("mxv", 1, 1, 1, 7, fmt="sellcs"))
        log(PerfEvent("dot", 1, 0, 1, 3))
        assert log.by_format() == {"csr": 150, "sellcs": 7, "": 3}

    def test_by_format_tolerates_reduced_events(self):
        class Reduced:       # a third-party event: bytes only, no fmt
            bytes = 42

        log = EventLog()
        log(PerfEvent("mxv", 1, 1, 1, 100, fmt="csr"))
        log.events.append(Reduced())
        assert log.by_format("bytes") == {"csr": 100, "": 42}
        # a field the reduced event lacks contributes 0, not a crash
        assert log.by_format("flops") == {"csr": 1, "": 0}
        assert log.total("flops") == 1


class TestRecordLabelFallback:
    def test_explicit_label_used_when_stack_empty(self):
        log = EventLog()
        with backend.collect(log):
            backend.record("fused_mxv_lambda", 1, 1, 1, 1, label="rbgs@L2")
        assert log.events[0].label == "rbgs@L2"

    def test_enclosing_labelled_scope_wins(self):
        log = EventLog()
        with backend.collect(log), backend.labelled("outer"):
            backend.record("fused_mxv_lambda", 1, 1, 1, 1, label="rbgs@L2")
        assert log.events[0].label == "outer"
