"""Smoke tests: the examples must keep running end-to-end.

The distributed-scaling example is the shop window for ``repro.dist``;
run it at a tiny problem size so a regression in any backend's public
API surfaces as a test failure, not as a rotted script.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _run_example(script: str, *args: str) -> str:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / script), *args],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestDistributedScalingExample:
    def test_runs_end_to_end_tiny(self):
        out = _run_example("distributed_scaling.py", "8", "4")
        # one row per node count, plus the findings epilogue
        for token in ("weak scaling", "ALP comm MB", "Ref comm MB",
                      "what to look for"):
            assert token in out
        # p=2, 3 and 4 rows all printed; p=4 exercises the 2D backend
        lines = [ln for ln in out.splitlines()
                 if ln.strip().startswith(("2 ", "3 ", "4 "))]
        assert len(lines) == 3
        assert "-" not in lines[2].split()[4], "2D column should be numeric at p=4"
