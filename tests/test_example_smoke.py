"""Smoke tests: the examples must keep running end-to-end.

The distributed-scaling example is the shop window for ``repro.dist``
(run at a tiny problem size) and the GraphBLAS tour is the shop window
for the substrate — it exercises the generic-semiring paths that must
keep working as storage formats change underneath.  A regression in
any public API surfaces as a test failure, not as a rotted script.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _run_example(script: str, *args: str, env: dict = None) -> str:
    env = {**os.environ, **(env or {})}
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / script), *args],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestGraphblasTourExample:
    def test_runs_end_to_end(self):
        out = _run_example("graphblas_tour.py")
        # the script self-checks its BFS/SSSP answers with asserts; here
        # assert the narration shape so silent truncation also fails
        for token in ("BFS levels", "shortest-path distances",
                      "different semiring"):
            assert token in out

    def test_runs_under_forced_substrate(self):
        """The tour must be substrate-independent, like everything else."""
        out = _run_example("graphblas_tour.py",
                           env={"REPRO_SUBSTRATE": "sellcs"})
        assert "different semiring" in out


class TestDistributedScalingExample:
    def test_runs_end_to_end_tiny(self):
        out = _run_example("distributed_scaling.py", "8", "4")
        # one row per node count, plus the findings epilogue
        for token in ("weak scaling", "ALP comm MB", "Ref comm MB",
                      "what to look for"):
            assert token in out
        # p=2, 3 and 4 rows all printed; p=4 exercises the 2D backend
        lines = [ln for ln in out.splitlines()
                 if ln.strip().startswith(("2 ", "3 ", "4 "))]
        assert len(lines) == 3
        assert "-" not in lines[2].split()[4], "2D column should be numeric at p=4"
