"""Partitions: 1D, block-cyclic, geometric 3D, factorisation, BFS."""

import numpy as np
import pytest

from repro.dist.partition import (
    Block1D,
    BlockCyclic1D,
    Grid3DPartition,
    bfs_partition,
    factor3,
    halo_for_owners,
)
from repro.grid import Grid3D
from repro.grid.stencil import stencil_27pt_coo
from repro.hpcg.problem import generate_problem
from repro.util.errors import InvalidValue


class TestBlock1D:
    def test_partition_covers_all(self):
        p = Block1D(10, 3)
        owners = p.owner(np.arange(10))
        sizes = np.bincount(owners, minlength=3)
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_local_indices_contiguous(self):
        p = Block1D(10, 3)
        for k in range(3):
            idx = p.local_indices(k)
            assert (np.diff(idx) == 1).all()
            assert idx.size == p.local_size(k)

    def test_owner_matches_local(self):
        p = Block1D(17, 4)
        for k in range(4):
            assert (p.owner(p.local_indices(k)) == k).all()

    def test_invalid(self):
        with pytest.raises(InvalidValue):
            Block1D(5, 0)


class TestBlockCyclic:
    def test_round_robin_blocks(self):
        p = BlockCyclic1D(12, 3, block=2)
        owners = p.owner(np.arange(12))
        np.testing.assert_array_equal(
            owners, [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]
        )

    def test_balanced(self):
        p = BlockCyclic1D(1000, 7, block=8)
        sizes = [p.local_size(k) for k in range(7)]
        assert max(sizes) - min(sizes) <= 8

    def test_covers_all(self):
        p = BlockCyclic1D(100, 4, block=16)
        total = np.concatenate([p.local_indices(k) for k in range(4)])
        assert np.array_equal(np.sort(total), np.arange(100))

    def test_invalid_block(self):
        with pytest.raises(InvalidValue):
            BlockCyclic1D(10, 2, block=0)


class TestFactor3:
    def test_perfect_cube(self):
        assert factor3(8) == (2, 2, 2)
        assert factor3(27) == (3, 3, 3)

    def test_primes_are_pencils(self):
        assert factor3(7) == (1, 1, 7)
        assert factor3(5) == (1, 1, 5)

    def test_composites(self):
        assert factor3(6) == (1, 2, 3)
        assert factor3(12) == (2, 2, 3)
        assert factor3(4) == (1, 2, 2)

    def test_one(self):
        assert factor3(1) == (1, 1, 1)

    def test_product_invariant(self):
        for p in range(1, 30):
            px, py, pz = factor3(p)
            assert px * py * pz == p

    def test_invalid(self):
        with pytest.raises(InvalidValue):
            factor3(0)


class TestGrid3DPartition:
    def test_owner_coverage_and_balance(self):
        g = Grid3D(8, 8, 8)
        part = Grid3DPartition(g, 8)
        owners = part.owner(np.arange(g.npoints))
        sizes = np.bincount(owners, minlength=8)
        assert (sizes == 64).all()

    def test_boxes_are_axis_aligned(self):
        g = Grid3D(4, 4, 4)
        part = Grid3DPartition(g, 2)  # (1,1,2): two z-slabs
        owners = part.owner(np.arange(g.npoints))
        _, _, iz = g.all_coords()
        np.testing.assert_array_equal(owners, (iz >= 2).astype(np.int64))

    def test_indivisible_rejected(self):
        with pytest.raises(InvalidValue):
            Grid3DPartition(Grid3D(5, 4, 4), 2, shape=(2, 1, 1))

    def test_explicit_shape(self):
        g = Grid3D(6, 4, 4)
        part = Grid3DPartition(g, 6, shape=(3, 2, 1))
        assert part.shape == (3, 2, 1)
        assert part.local_dims == (2, 2, 4)

    def test_bad_shape_product(self):
        with pytest.raises(InvalidValue):
            Grid3DPartition(Grid3D(4, 4, 4), 4, shape=(2, 2, 2))

    def test_halo_surface_formula(self):
        g = Grid3D(8, 8, 8)
        part = Grid3DPartition(g, 8)
        sx, sy, sz = part.local_dims
        assert part.halo_surface_points() == 2 * (sx * sy + sy * sz + sx * sz)

    def test_halo_exchanges_correctness(self):
        """Brute-force check: the halo of node k is exactly the set of
        remote columns its rows reference."""
        g = Grid3D(4, 4, 4)
        part = Grid3DPartition(g, 2)
        import scipy.sparse as sp
        rows, cols, vals = stencil_27pt_coo(g)
        A = sp.csr_matrix((vals, (rows, cols)), shape=(g.npoints, g.npoints))
        A.sort_indices()
        halos = part.halo_exchanges(A.indptr, A.indices)
        owners = part.owner(np.arange(g.npoints))
        for k in range(2):
            received = np.concatenate(
                [idxs for (src, dst), idxs in halos.items() if dst == k]
                or [np.empty(0, dtype=np.int64)]
            )
            mine = np.flatnonzero(owners == k)
            needed = set()
            for i in mine:
                for j in A.indices[A.indptr[i]:A.indptr[i + 1]]:
                    if owners[j] != k:
                        needed.add(int(j))
            assert set(received.tolist()) == needed

    def test_halo_below_surface_bound(self):
        problem = generate_problem(8)
        part = Grid3DPartition(problem.grid, 4)
        A = problem.A.to_scipy()
        halos = part.halo_exchanges(A.indptr, A.indices)
        per_node_recv = np.zeros(4, dtype=np.int64)
        for (src, dst), idxs in halos.items():
            per_node_recv[dst] += idxs.size
        # the 27-point halo includes edges/corners of neighbouring boxes;
        # it is O(surface) — within a small constant of the face count.
        bound = 2.0 * part.halo_surface_points()
        assert per_node_recv.max() <= bound


class TestBlackBoxPartition:
    def test_covers_and_balances(self, problem8):
        A = problem8.A.to_scipy()
        owners = bfs_partition(A.indptr, A.indices, problem8.n, 4)
        sizes = np.bincount(owners, minlength=4)
        assert sizes.sum() == problem8.n
        assert sizes.max() - sizes.min() <= 1

    def test_beats_block_cyclic_halo(self, problem8):
        """BFS locality: far less halo than the locality-free 1D cyclic."""
        A = problem8.A.to_scipy()
        n, p = problem8.n, 4
        owners_bfs = bfs_partition(A.indptr, A.indices, n, p)
        cyc = BlockCyclic1D(n, p, block=4)
        owners_cyc = cyc.owner(np.arange(n))
        def volume(owners):
            halos = halo_for_owners(A.indptr, A.indices, owners, p)
            return sum(idxs.size for idxs in halos.values())
        assert volume(owners_bfs) < volume(owners_cyc)

    def test_halo_for_owners_empty_for_serial(self, problem4):
        A = problem4.A.to_scipy()
        owners = np.zeros(problem4.n, dtype=np.int64)
        assert halo_for_owners(A.indptr, A.indices, owners, 1) == {}
