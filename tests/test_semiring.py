"""Semirings: structure and the fast-path predicate."""

from repro.graphblas import semiring as sr
from repro.graphblas import monoid as m
from repro.graphblas import ops
from repro.graphblas.semiring import Semiring


class TestPredefined:
    def test_plus_times_is_fast_path(self):
        assert sr.plus_times.is_plus_times

    def test_min_plus_not_fast_path(self):
        assert not sr.min_plus.is_plus_times

    def test_plus_first_not_fast_path(self):
        # additive monoid matches but multiply is 'first'
        assert not sr.plus_first.is_plus_times

    def test_name(self):
        assert sr.min_plus.name == "min_plus"
        assert sr.plus_times.name == "plus_times"

    def test_lor_land_components(self):
        assert sr.lor_land.add is m.lor_monoid
        assert sr.lor_land.mul is ops.land

    def test_custom_semiring(self):
        s = Semiring(m.max_monoid, ops.plus)
        assert s.name == "max_plus"
        assert not s.is_plus_times

    def test_all_predefined_have_monoid_add(self):
        for s in (sr.plus_times, sr.min_plus, sr.max_plus, sr.max_times,
                  sr.min_times, sr.lor_land, sr.plus_first, sr.plus_second,
                  sr.min_first, sr.min_second):
            assert s.add.op.associative
