"""Restriction/refinement: matrix form vs direct injection."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.grid import Grid3D
from repro.hpcg.restriction import build_restriction, prolong_add, restrict
from repro.util.errors import DimensionMismatch


@pytest.fixture()
def grids():
    fine = Grid3D(4, 4, 4)
    return fine, fine.coarsen()


class TestBuildRestriction:
    def test_shape(self, grids):
        fine, coarse = grids
        R = build_restriction(fine)
        assert R.shape == (coarse.npoints, fine.npoints)

    def test_one_entry_per_row(self, grids):
        fine, coarse = grids
        R = build_restriction(fine)
        assert R.nvals == coarse.npoints
        rows, cols, vals = R.to_coo()
        assert (vals == 1.0).all()
        assert np.unique(rows).size == coarse.npoints

    def test_columns_are_injection_points(self, grids):
        fine, _ = grids
        R = build_restriction(fine)
        _, cols, _ = R.to_coo()
        np.testing.assert_array_equal(np.sort(cols),
                                      np.sort(fine.injection_indices()))


class TestRestrict:
    def test_matches_direct_indexing(self, grids, rng):
        fine, coarse = grids
        R = build_restriction(fine)
        xf = rng.standard_normal(fine.npoints)
        rc = grb.Vector.dense(coarse.npoints)
        restrict(rc, R, grb.Vector.from_dense(xf))
        np.testing.assert_array_equal(
            rc.to_dense(), xf[fine.injection_indices()]
        )

    def test_size_checks(self, grids):
        fine, coarse = grids
        R = build_restriction(fine)
        with pytest.raises(DimensionMismatch):
            restrict(grb.Vector.dense(coarse.npoints + 1), R,
                     grb.Vector.dense(fine.npoints))


class TestProlong:
    def test_matches_direct_scatter_add(self, grids, rng):
        fine, coarse = grids
        R = build_restriction(fine)
        zc = rng.standard_normal(coarse.npoints)
        zf0 = rng.standard_normal(fine.npoints)
        zf = grb.Vector.from_dense(zf0.copy())
        prolong_add(zf, R, grb.Vector.from_dense(zc))
        expected = zf0.copy()
        expected[fine.injection_indices()] += zc
        np.testing.assert_allclose(zf.to_dense(), expected)

    def test_non_injection_points_untouched(self, grids, rng):
        fine, coarse = grids
        R = build_restriction(fine)
        zf = grb.Vector.dense(fine.npoints, 3.0)
        prolong_add(zf, R, grb.Vector.dense(coarse.npoints, 1.0))
        inj = set(fine.injection_indices().tolist())
        out = zf.to_dense()
        for i in range(fine.npoints):
            assert out[i] == (4.0 if i in inj else 3.0)

    def test_size_checks(self, grids):
        fine, coarse = grids
        R = build_restriction(fine)
        with pytest.raises(DimensionMismatch):
            prolong_add(grb.Vector.dense(3), R, grb.Vector.dense(coarse.npoints))

    def test_restrict_then_prolong_is_projection(self, grids, rng):
        """R (R' zc) = zc: injection is a partial isometry."""
        fine, coarse = grids
        R = build_restriction(fine)
        zc = rng.standard_normal(coarse.npoints)
        zf = grb.Vector.dense(fine.npoints, 0.0)
        prolong_add(zf, R, grb.Vector.from_dense(zc))
        back = grb.Vector.dense(coarse.npoints)
        restrict(back, R, zf)
        np.testing.assert_allclose(back.to_dense(), zc)
