"""Timers and error types."""

import time

import pytest

from repro.util.errors import (
    DimensionMismatch,
    DomainMismatch,
    InvalidValue,
    NotConverged,
    OutputAliasing,
    ReproError,
)
from repro.util.timer import Timer, TimerRegistry, null_timer


class TestTimer:
    def test_measure_accumulates(self):
        t = Timer("x")
        with t.measure():
            time.sleep(0.002)
        with t.measure():
            pass
        assert t.total > 0.001 and t.count == 2

    def test_tick(self):
        t = Timer("x")
        t.tick(1.5)
        t.tick(0.5)
        assert t.total == 2.0 and t.count == 2

    def test_tick_negative_rejected(self):
        with pytest.raises(ValueError):
            Timer("x").tick(-1.0)

    def test_reset(self):
        t = Timer("x")
        t.tick(3.0)
        t.reset()
        assert t.total == 0.0 and t.count == 0


class TestTimerRegistry:
    def test_get_creates_once(self):
        reg = TimerRegistry()
        assert reg.get("a") is reg.get("a")

    def test_prefix_totals(self):
        reg = TimerRegistry()
        reg.tick("mg/L0/rbgs", 1.0)
        reg.tick("mg/L1/rbgs", 2.0)
        reg.tick("cg/dot", 5.0)
        assert reg.total("mg/") == 3.0
        assert reg.total("") == 8.0
        assert reg.total("mg/L1") == 2.0

    def test_measure_context(self):
        reg = TimerRegistry()
        with reg.measure("k"):
            pass
        assert reg.get("k").count == 1

    def test_as_dict_sorted(self):
        reg = TimerRegistry()
        reg.tick("b", 1.0)
        reg.tick("a", 2.0)
        assert list(reg.as_dict()) == ["a", "b"]

    def test_report_renders(self):
        reg = TimerRegistry()
        reg.tick("kernel", 1.0)
        text = reg.report()
        assert "kernel" in text and "100.0%" in text

    def test_reset_all(self):
        reg = TimerRegistry()
        reg.tick("a", 1.0)
        reg.reset()
        assert reg.total("") == 0.0

    def test_as_dict_with_counts(self):
        reg = TimerRegistry()
        reg.tick("a", 1.0)
        reg.tick("a", 2.0)
        assert reg.as_dict(counts=True) == {"a": (3.0, 2)}

    def test_merge_folds_totals_and_counts(self):
        a, b = TimerRegistry(), TimerRegistry()
        a.tick("shared", 1.0)
        b.tick("shared", 2.0)
        b.tick("only_b", 4.0)
        assert a.merge(b) is a
        assert a.as_dict(counts=True) == {
            "shared": (3.0, 2), "only_b": (4.0, 1),
        }
        # the source registry is untouched
        assert b.as_dict() == {"only_b": 4.0, "shared": 2.0}

    def test_rollup_by_prefix_depth(self):
        reg = TimerRegistry()
        reg.tick("mg/L0/rbgs", 1.0)
        reg.tick("mg/L0/restrict", 2.0)
        reg.tick("mg/L1/rbgs", 4.0)
        reg.tick("cg/dot", 8.0)
        assert reg.rollup() == {"cg": 8.0, "mg": 7.0}
        assert reg.rollup(depth=2) == {
            "cg/dot": 8.0, "mg/L0": 3.0, "mg/L1": 4.0,
        }
        # every leaf lands in exactly one bucket at every depth
        assert sum(reg.rollup().values()) == reg.total("")
        with pytest.raises(ValueError):
            reg.rollup(depth=0)

    def test_reentrant_measure_rejected(self):
        t = Timer("x")
        with pytest.raises(RuntimeError, match="re-entrant"):
            with t.measure():
                with t.measure():
                    pass
        # the guard resets, so the timer stays usable afterwards
        with t.measure():
            pass
        assert t.count == 2  # the failed outer exit still counted once

    def test_registry_reentrant_guard_through_measure(self):
        reg = TimerRegistry()
        with pytest.raises(RuntimeError):
            with reg.measure("k"):
                with reg.measure("k"):
                    pass
        # distinct labels nest fine (the mg/L{i} recursion pattern)
        with reg.measure("outer"), reg.measure("inner"):
            pass


class TestNullTimer:
    def test_noop_everything(self):
        with null_timer.measure("anything"):
            pass
        null_timer.tick("x", 5.0)
        assert null_timer.total("x") == 0.0
        assert null_timer.get("y") is null_timer


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(DimensionMismatch, ReproError)
        assert issubclass(DimensionMismatch, ValueError)
        assert issubclass(DomainMismatch, TypeError)
        assert issubclass(InvalidValue, ValueError)
        assert issubclass(OutputAliasing, ValueError)

    def test_not_converged_payload(self):
        err = NotConverged("failed", iterations=50, residual=0.1)
        assert err.iterations == 50 and err.residual == 0.1

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise InvalidValue("nope")
