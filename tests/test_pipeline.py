"""The nonblocking-execution pipeline (ref. [32] in miniature)."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.pipeline import Pipeline
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.problem import generate_problem
from repro.hpcg.smoothers import RBGSSmoother
from repro.util.errors import InvalidValue


@pytest.fixture(scope="module")
def setup():
    problem = generate_problem(8)
    colors = color_masks(lattice_coloring(problem.grid))
    rng = np.random.default_rng(0)
    return problem, colors, rng.standard_normal(problem.n)


def rbgs_pointwise(idx, z, r, tmp, d):
    dd = d[idx]
    z[idx] = (r[idx] - tmp[idx] + z[idx] * dd) / dd


class TestFusionDetection:
    def test_mxv_lambda_pair_fuses(self, setup):
        problem, colors, r_vals = setup
        z = grb.Vector.dense(problem.n, 0.0)
        r = grb.Vector.from_dense(r_vals)
        tmp = grb.Vector.dense(problem.n)
        pipe = Pipeline()
        pipe.mxv(tmp, colors[0], problem.A, z)
        pipe.ewise_lambda(rbgs_pointwise, colors[0], z, r, tmp,
                          problem.A_diag)
        stats = pipe.execute()
        assert stats.fused_pairs == 1
        assert stats.eager_stages == 0

    def test_different_masks_do_not_fuse(self, setup):
        problem, colors, r_vals = setup
        z = grb.Vector.dense(problem.n, 0.0)
        r = grb.Vector.from_dense(r_vals)
        tmp = grb.Vector.dense(problem.n)
        pipe = Pipeline()
        pipe.mxv(tmp, colors[0], problem.A, z)
        pipe.ewise_lambda(rbgs_pointwise, colors[1], z, r, tmp,
                          problem.A_diag)
        stats = pipe.execute()
        assert stats.fused_pairs == 0
        assert stats.eager_stages == 2

    def test_generic_semiring_does_not_fuse(self, setup):
        problem, colors, r_vals = setup
        z = grb.Vector.dense(problem.n, 1.0)
        r = grb.Vector.from_dense(r_vals)
        tmp = grb.Vector.dense(problem.n)
        pipe = Pipeline()
        pipe.mxv(tmp, colors[0], problem.A, z, semiring=grb.min_plus)
        pipe.ewise_lambda(rbgs_pointwise, colors[0], z, r, tmp,
                          problem.A_diag)
        stats = pipe.execute()
        assert stats.fused_pairs == 0

    def test_unconsumed_product_does_not_fuse(self, setup):
        problem, colors, r_vals = setup
        z = grb.Vector.dense(problem.n, 0.0)
        r = grb.Vector.from_dense(r_vals)
        tmp = grb.Vector.dense(problem.n)

        def no_tmp(idx, zv, rv):
            zv[idx] += rv[idx]

        pipe = Pipeline()
        pipe.mxv(tmp, colors[0], problem.A, z)
        pipe.ewise_lambda(no_tmp, colors[0], z, r)
        stats = pipe.execute()
        assert stats.fused_pairs == 0
        assert stats.eager_stages == 2


class TestFusedCorrectness:
    def test_full_sweep_bit_identical(self, setup):
        """A whole RBGS forward sweep through the pipeline equals the
        blocking smoother exactly."""
        problem, colors, r_vals = setup
        r = grb.Vector.from_dense(r_vals)

        z_pipe = grb.Vector.dense(problem.n, 0.0)
        tmp = grb.Vector.dense(problem.n)
        total_fused = 0
        for mask in colors:
            pipe = Pipeline()
            pipe.mxv(tmp, mask, problem.A, z_pipe)
            pipe.ewise_lambda(rbgs_pointwise, mask, z_pipe, r, tmp,
                              problem.A_diag)
            total_fused += pipe.execute().fused_pairs
        assert total_fused == 8

        z_block = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, colors).forward(z_block, r)
        np.testing.assert_array_equal(z_pipe.to_dense(), z_block.to_dense())

    def test_fused_saves_traffic(self, setup):
        problem, colors, r_vals = setup
        r = grb.Vector.from_dense(r_vals)

        def run(build):
            z = grb.Vector.dense(problem.n, 0.0)
            tmp = grb.Vector.dense(problem.n)
            log = grb.backend.EventLog()
            with grb.backend.collect(log):
                build(z, tmp)
            return log.total("bytes")

        def pipelined(z, tmp):
            pipe = Pipeline()
            pipe.mxv(tmp, colors[0], problem.A, z)
            pipe.ewise_lambda(rbgs_pointwise, colors[0], z, r, tmp,
                              problem.A_diag)
            pipe.execute()

        def blocking(z, tmp):
            grb.mxv(tmp, colors[0], problem.A, z,
                    desc=grb.descriptors.structural)
            grb.ewise_lambda(rbgs_pointwise, colors[0], z, r, tmp,
                             problem.A_diag)

        assert run(pipelined) < run(blocking)


class TestLifecycle:
    def test_repr(self):
        assert "0 stages" in repr(Pipeline())

    def test_double_execute_rejected(self, setup):
        problem, colors, _ = setup
        pipe = Pipeline()
        pipe.execute()
        with pytest.raises(InvalidValue):
            pipe.execute()

    def test_append_after_execute_rejected(self, setup):
        problem, colors, _ = setup
        pipe = Pipeline()
        pipe.execute()
        with pytest.raises(InvalidValue):
            pipe.mxv(grb.Vector.dense(2), None, grb.Matrix.identity(2),
                     grb.Vector.dense(2))

    def test_product_read_only_in_fused_lambda(self, setup):
        problem, colors, r_vals = setup
        z = grb.Vector.dense(problem.n, 0.0)
        r = grb.Vector.from_dense(r_vals)
        tmp = grb.Vector.dense(problem.n)

        def writes_tmp(idx, zv, rv, tv, dv):
            tv[idx] = 0.0  # illegal on the fused product

        pipe = Pipeline()
        pipe.mxv(tmp, colors[0], problem.A, z)
        pipe.ewise_lambda(writes_tmp, colors[0], z, r, tmp, problem.A_diag)
        with pytest.raises(InvalidValue):
            pipe.execute()


class TestPipelinedSmoother:
    def test_bit_identical_to_blocking(self, setup):
        from repro.graphblas.pipeline import PipelinedRBGSSmoother
        problem, colors, r_vals = setup
        r = grb.Vector.from_dense(r_vals)
        z1 = grb.Vector.dense(problem.n, 0.0)
        PipelinedRBGSSmoother(problem.A, problem.A_diag, colors).smooth(z1, r, sweeps=2)
        z2 = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, colors).smooth(z2, r, sweeps=2)
        np.testing.assert_array_equal(z1.to_dense(), z2.to_dense())

    def test_every_color_step_fused(self, setup):
        from repro.graphblas.pipeline import PipelinedRBGSSmoother
        problem, colors, r_vals = setup
        r = grb.Vector.from_dense(r_vals)
        smoother = PipelinedRBGSSmoother(problem.A, problem.A_diag, colors)
        z = grb.Vector.dense(problem.n, 0.0)
        smoother.forward(z, r)
        assert smoother.last_stats.fused_pairs == 8
        assert smoother.last_stats.eager_stages == 0

    def test_usable_in_multigrid(self, setup):
        from repro.graphblas.pipeline import PipelinedRBGSSmoother
        from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
        from repro.hpcg.cg import pcg
        problem, _colors, _ = setup
        hierarchy = build_hierarchy(problem, levels=3,
                                    smoother_factory=PipelinedRBGSSmoother)
        x = problem.x0.dup()
        res = pcg(problem.A, problem.b, x,
                  preconditioner=MGPreconditioner(hierarchy),
                  max_iters=50, tolerance=1e-8)
        assert res.converged and res.iterations == 7  # same as blocking

    def test_rejects_empty_colors(self, setup):
        from repro.graphblas.pipeline import PipelinedRBGSSmoother
        problem, _, _ = setup
        with pytest.raises(InvalidValue):
            PipelinedRBGSSmoother(problem.A, problem.A_diag, [])
