"""Multigrid hierarchy and V-cycle."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy, mg_vcycle
from repro.hpcg.smoothers import JacobiSmoother
from repro.util.errors import InvalidValue
from repro.util.timer import TimerRegistry


class TestBuildHierarchy:
    def test_level_count_and_sizes(self, problem8):
        top = build_hierarchy(problem8, levels=3)
        levels = top.levels()
        assert len(levels) == 3
        assert [lvl.n for lvl in levels] == [512, 64, 8]
        assert [lvl.index for lvl in levels] == [0, 1, 2]

    def test_too_many_levels(self, problem4):
        with pytest.raises(InvalidValue):
            build_hierarchy(problem4, levels=4)  # 4 -> 2 -> 1: only 3

    def test_zero_levels(self, problem4):
        with pytest.raises(InvalidValue):
            build_hierarchy(problem4, levels=0)

    def test_single_level_has_no_transfer(self, problem4):
        top = build_hierarchy(problem4, levels=1)
        assert top.coarser is None and top.R is None

    def test_transfer_shapes(self, problem8):
        top = build_hierarchy(problem8, levels=2)
        assert top.R.shape == (64, 512)
        assert top.rc.size == 64 and top.zc.size == 64

    def test_coarse_operators_are_stencils(self, problem8):
        top = build_hierarchy(problem8, levels=2)
        coarse = top.coarser
        assert coarse.A.shape == (64, 64)
        np.testing.assert_array_equal(coarse.A_diag.to_dense(),
                                      np.full(64, 26.0))

    def test_custom_smoother_factory(self, problem8):
        top = build_hierarchy(
            problem8, levels=2,
            smoother_factory=lambda A, d, c: JacobiSmoother(A, d),
        )
        assert isinstance(top.smoother, JacobiSmoother)


class TestVCycle:
    def test_improves_solution(self, problem8, rng):
        top = build_hierarchy(problem8, levels=3)
        b = problem8.b
        z = grb.Vector.dense(problem8.n, 0.0)
        mg_vcycle(top, z, b)
        assert problem8.residual_norm(z) < problem8.residual_norm(problem8.x0)

    def test_repeated_cycles_converge(self, problem8):
        top = build_hierarchy(problem8, levels=3)
        z = grb.Vector.dense(problem8.n, 0.0)
        res = []
        for _ in range(5):
            mg_vcycle(top, z, problem8.b)
            res.append(problem8.residual_norm(z))
        # the V-cycle contracts the residual by roughly 2x per cycle
        assert res[-1] < res[0] * 0.15
        assert all(b < a for a, b in zip(res, res[1:]))

    def test_timers_populated(self, problem8):
        top = build_hierarchy(problem8, levels=3)
        timers = TimerRegistry()
        z = grb.Vector.dense(problem8.n, 0.0)
        mg_vcycle(top, z, problem8.b, timers=timers)
        names = set(timers.timers)
        assert "mg/L0/rbgs" in names and "mg/L1/rbgs" in names
        assert "mg/L0/restrict" in names and "mg/L0/prolong" in names
        # the coarsest level only smooths
        assert "mg/L2/restrict" not in names

    def test_single_level_is_just_smoothing(self, problem8):
        top = build_hierarchy(problem8, levels=1)
        z1 = grb.Vector.dense(problem8.n, 0.0)
        mg_vcycle(top, z1, problem8.b)
        z2 = grb.Vector.dense(problem8.n, 0.0)
        top.smoother.smooth(z2, problem8.b)
        np.testing.assert_array_equal(z1.to_dense(), z2.to_dense())


class TestPreconditioner:
    def test_is_linear_operator(self, problem8, rng):
        """M(a x + b y) == a M(x) + b M(y) — required for CG theory."""
        precond = MGPreconditioner(build_hierarchy(problem8, levels=3))
        n = problem8.n
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        a, b = 2.5, -1.25

        def apply(vec):
            out = grb.Vector.dense(n)
            precond(out, grb.Vector.from_dense(vec))
            return out.to_dense()

        lhs = apply(a * x + b * y)
        rhs = a * apply(x) + b * apply(y)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-12)

    def test_deterministic(self, problem8, rng):
        precond = MGPreconditioner(build_hierarchy(problem8, levels=3))
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z1 = grb.Vector.dense(problem8.n)
        z2 = grb.Vector.dense(problem8.n, 123.0)  # stale content must not matter
        precond(z1, r)
        precond(z2, r)
        np.testing.assert_array_equal(z1.to_dense(), z2.to_dense())
