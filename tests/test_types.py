"""Domain handling: normalisation, promotion, rejection."""

import numpy as np
import pytest

from repro.graphblas import types as gbtypes
from repro.util.errors import DomainMismatch


class TestAsDtype:
    def test_float64(self):
        assert gbtypes.as_dtype(np.float64) == np.dtype(np.float64)

    def test_string_name(self):
        assert gbtypes.as_dtype("float32") == np.dtype(np.float32)

    def test_python_float(self):
        assert gbtypes.as_dtype(float) == np.dtype(np.float64)

    def test_python_int(self):
        assert gbtypes.as_dtype(int) == np.dtype(np.int64)

    def test_python_bool(self):
        assert gbtypes.as_dtype(bool) == np.dtype(np.bool_)

    def test_all_predefined_accepted(self):
        for dt in gbtypes.PREDEFINED:
            assert gbtypes.as_dtype(dt) == dt

    def test_complex_rejected(self):
        with pytest.raises(DomainMismatch):
            gbtypes.as_dtype(np.complex128)

    def test_object_rejected(self):
        with pytest.raises(DomainMismatch):
            gbtypes.as_dtype(object)

    def test_string_dtype_rejected(self):
        with pytest.raises(DomainMismatch):
            gbtypes.as_dtype("U10")


class TestPromote:
    def test_same(self):
        assert gbtypes.promote(np.float64, np.float64) == np.dtype(np.float64)

    def test_int_float(self):
        assert gbtypes.promote(np.int32, np.float64) == np.dtype(np.float64)

    def test_bool_int(self):
        assert gbtypes.promote(np.bool_, np.int8) == np.dtype(np.int8)

    def test_int8_uint8(self):
        # numpy promotes to a signed type able to hold both
        assert gbtypes.promote(np.int8, np.uint8) == np.dtype(np.int16)

    def test_three_way(self):
        assert gbtypes.promote(np.bool_, np.int32, np.float32) == np.dtype(
            np.float64
        )


class TestZeroOf:
    def test_float_zero(self):
        z = gbtypes.zero_of(np.float64)
        assert z == 0.0 and isinstance(z, np.float64)

    def test_bool_zero(self):
        assert gbtypes.zero_of(bool) == False  # noqa: E712
