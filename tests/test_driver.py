"""The HPCG benchmark driver end-to-end."""

import pytest

from repro.hpcg.driver import main, run_hpcg


class TestRunHpcg:
    def test_end_to_end(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3)
        assert result.cg.iterations == 10
        assert result.symmetry.passed
        assert result.run_seconds > 0
        assert result.gflops > 0

    def test_converges_with_tolerance(self):
        result = run_hpcg(nx=8, max_iters=100, tolerance=1e-8, mg_levels=3,
                          validate_symmetry=False)
        assert result.cg.converged

    def test_no_preconditioner(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=0,
                          validate_symmetry=False)
        assert result.cg.iterations == 10

    def test_flops_accounting(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                          validate_symmetry=False)
        counts = result.flops.merged()
        assert counts["spmv"] > 0 and counts["rbgs"] > 0
        assert counts["rbgs"] > counts["spmv"]  # RBGS dominates flops too
        assert result.flops.total == sum(counts.values())

    def test_mg_level_breakdown_shares(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                          validate_symmetry=False)
        rows = result.mg_level_breakdown()
        assert len(rows) == 3
        total_share = sum(r["rbgs"] + r["restrict_refine"] for r in rows)
        assert 0 < total_share <= 1.0
        # coarsest level performs no grid transfer
        assert rows[-1]["restrict_refine"] == 0.0

    def test_rbgs_majority_of_time(self):
        """The paper's headline breakdown: RBGS > 50% of execution."""
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                          validate_symmetry=False)
        rbgs = sum(r["rbgs"] for r in result.mg_level_breakdown())
        assert rbgs > 0.5

    def test_summary_renders(self):
        result = run_hpcg(nx=4, max_iters=3, mg_levels=2,
                          validate_symmetry=False)
        text = result.summary()
        assert "HPCG result" in text and "GFLOP/s" in text

    def test_b_style_ones(self):
        result = run_hpcg(nx=4, max_iters=3, mg_levels=2, b_style="ones",
                          validate_symmetry=False)
        assert result.problem.b_style == "ones"

    def test_reuse_problem(self, problem8):
        result = run_hpcg(nx=0, problem=problem8, max_iters=3, mg_levels=2,
                          validate_symmetry=False)
        assert result.problem is problem8


class TestCli:
    def test_main_ok(self, capsys):
        rc = main(["--nx", "4", "--iters", "3", "--mg-levels", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HPCG result" in out

    def test_main_with_timers(self, capsys):
        rc = main(["--nx", "4", "--iters", "2", "--mg-levels", "2",
                   "--timers"])
        assert rc == 0
        assert "mg/L0/rbgs" in capsys.readouterr().out
