"""The HPCG benchmark driver end-to-end."""

import json

import pytest

from repro.hpcg.driver import main, run_hpcg


class TestRunHpcg:
    def test_end_to_end(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3)
        assert result.cg.iterations == 10
        assert result.symmetry.passed
        assert result.run_seconds > 0
        assert result.gflops > 0

    def test_converges_with_tolerance(self):
        result = run_hpcg(nx=8, max_iters=100, tolerance=1e-8, mg_levels=3,
                          validate_symmetry=False)
        assert result.cg.converged

    def test_no_preconditioner(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=0,
                          validate_symmetry=False)
        assert result.cg.iterations == 10

    def test_flops_accounting(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                          validate_symmetry=False)
        counts = result.flops.merged()
        assert counts["spmv"] > 0 and counts["rbgs"] > 0
        assert counts["rbgs"] > counts["spmv"]  # RBGS dominates flops too
        assert result.flops.total == sum(counts.values())

    def test_mg_level_breakdown_shares(self):
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                          validate_symmetry=False)
        rows = result.mg_level_breakdown()
        assert len(rows) == 3
        total_share = sum(r["rbgs"] + r["restrict_refine"] for r in rows)
        assert 0 < total_share <= 1.0
        # coarsest level performs no grid transfer
        assert rows[-1]["restrict_refine"] == 0.0

    def test_rbgs_majority_of_time(self):
        """The paper's headline breakdown: RBGS > 50% of execution."""
        result = run_hpcg(nx=8, max_iters=10, mg_levels=3,
                          validate_symmetry=False)
        rbgs = sum(r["rbgs"] for r in result.mg_level_breakdown())
        assert rbgs > 0.5

    def test_summary_renders(self):
        result = run_hpcg(nx=4, max_iters=3, mg_levels=2,
                          validate_symmetry=False)
        text = result.summary()
        assert "HPCG result" in text and "GFLOP/s" in text

    def test_b_style_ones(self):
        result = run_hpcg(nx=4, max_iters=3, mg_levels=2, b_style="ones",
                          validate_symmetry=False)
        assert result.problem.b_style == "ones"

    def test_reuse_problem(self, problem8):
        result = run_hpcg(nx=0, problem=problem8, max_iters=3, mg_levels=2,
                          validate_symmetry=False)
        assert result.problem is problem8


class TestCli:
    def test_main_ok(self, capsys):
        rc = main(["--nx", "4", "--iters", "3", "--mg-levels", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HPCG result" in out

    def test_main_with_timers(self, capsys):
        rc = main(["--nx", "4", "--iters", "2", "--mg-levels", "2",
                   "--timers"])
        assert rc == 0
        assert "mg/L0/rbgs" in capsys.readouterr().out


class TestCliRobustness:
    """Bad inputs exit with code 2 and one line on stderr — never a
    traceback, never a half-finished solve."""

    def _expect_error(self, capsys, argv, fragment):
        rc = main(argv)
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        assert fragment in err
        assert "Traceback" not in err

    def test_unwritable_artifact_paths(self, capsys, tmp_path):
        for flag in ("--trace-json", "--metrics-json", "--manifest-json",
                     "--trace-stream", "--folded-out"):
            self._expect_error(
                capsys,
                ["--nx", "4", "--iters", "1", "--mg-levels", "2",
                 flag, str(tmp_path / "no" / "such" / "dir" / "out.json")],
                "does not exist")

    def test_artifact_path_is_a_directory(self, capsys, tmp_path):
        self._expect_error(
            capsys,
            ["--nx", "4", "--iters", "1", "--mg-levels", "2",
             "--trace-json", str(tmp_path)],
            "is a directory")

    def test_faults_without_dist(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"seed": 1}\n')
        self._expect_error(
            capsys, ["--nx", "4", "--faults", str(plan)], "--dist")

    def test_missing_fault_plan(self, capsys, tmp_path):
        self._expect_error(
            capsys,
            ["--nx", "4", "--dist", "ref-3d",
             "--faults", str(tmp_path / "absent.json")],
            "cannot read")

    def test_malformed_fault_plan(self, capsys, tmp_path):
        plan = tmp_path / "broken.json"
        plan.write_text("{this is not json")
        self._expect_error(
            capsys,
            ["--nx", "4", "--dist", "ref-3d", "--faults", str(plan)],
            "not valid JSON")

    def test_unknown_plan_key(self, capsys, tmp_path):
        plan = tmp_path / "typo.json"
        plan.write_text(json.dumps({"seed": 1, "stragler": []}))
        self._expect_error(
            capsys,
            ["--nx", "4", "--dist", "ref-3d", "--faults", str(plan)],
            "unknown key")

    def test_plan_node_out_of_range(self, capsys, tmp_path):
        plan = tmp_path / "oob.json"
        plan.write_text(json.dumps(
            {"crashes": [{"node": 9, "superstep": 5}]}))
        self._expect_error(
            capsys,
            ["--nx", "4", "--dist", "ref-3d", "--nprocs", "4",
             "--faults", str(plan)],
            "out of range")

    def test_push_interval_needs_push_url(self, capsys):
        self._expect_error(
            capsys, ["--nx", "4", "--push-interval", "5"], "--push-url")

    def test_nonpositive_nprocs(self, capsys):
        self._expect_error(
            capsys, ["--nx", "4", "--dist", "ref-3d", "--nprocs", "0"],
            "nprocs")


class TestDistCli:
    def test_dist_clean_run(self, capsys):
        rc = main(["--nx", "4", "--iters", "3", "--mg-levels", "2",
                   "--dist", "ref-3d", "--nprocs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ref-3d: p=4" in out
        assert "Resilience" not in out     # no plan, no section

    def test_dist_faulted_run_reports_resilience(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 7,
            "crashes": [{"node": 1, "superstep": 200}],
            "checkpoint": {"interval": 2},
        }))
        rc = main(["--nx", "8", "--iters", "4", "--mg-levels", "2",
                   "--dist", "ref-3d", "--nprocs", "4",
                   "--faults", str(plan)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Resilience:" in out
        assert "clean time-to-solution" in out
        assert "recoveries: 1" in out
        assert "final residual matches clean run: True" in out
