"""CommTracker: sends, supersteps, h-relations."""

import numpy as np
import pytest

from repro.dist.comm import CommTracker
from repro.util.errors import InvalidValue


class TestSend:
    def test_basic_send(self):
        t = CommTracker(3)
        t.send(0, 1, 100)
        stats = t.sync()
        assert stats.sent[0] == 100 and stats.received[1] == 100
        assert stats.messages == 1

    def test_self_send_free(self):
        t = CommTracker(2)
        t.send(0, 0, 1000)
        assert t.sync().total_bytes == 0

    def test_empty_message_elided(self):
        t = CommTracker(2)
        t.send(0, 1, 0)
        assert t.sync().messages == 0

    def test_out_of_range(self):
        t = CommTracker(2)
        with pytest.raises(InvalidValue):
            t.send(0, 2, 10)
        with pytest.raises(InvalidValue):
            t.send(-1, 0, 10)

    def test_negative_bytes(self):
        t = CommTracker(2)
        with pytest.raises(InvalidValue):
            t.send(0, 1, -5)

    def test_zero_procs_rejected(self):
        with pytest.raises(InvalidValue):
            CommTracker(0)


class TestCollectives:
    def test_broadcast(self):
        t = CommTracker(4)
        t.broadcast(1, 10)
        stats = t.sync()
        assert stats.sent[1] == 30  # 3 receivers
        assert stats.received[0] == 10

    def test_allgather(self):
        t = CommTracker(3)
        t.allgather(np.array([10, 20, 30]))
        stats = t.sync()
        np.testing.assert_array_equal(stats.sent, [20, 40, 60])
        # everyone receives everyone else's share
        np.testing.assert_array_equal(stats.received, [50, 40, 30])

    def test_allgather_size_check(self):
        t = CommTracker(3)
        with pytest.raises(InvalidValue):
            t.allgather(np.array([1, 2]))

    def test_allreduce_scalar(self):
        t = CommTracker(4)
        t.allreduce_scalar()
        stats = t.sync()
        assert stats.sent[0] == 24  # 8 bytes to 3 peers


class TestSupersteps:
    def test_h_relation(self):
        t = CommTracker(3)
        t.send(0, 1, 100)
        t.send(2, 1, 50)
        stats = t.sync()
        # node 1 receives 150 — that's the h
        assert stats.h == 150

    def test_sync_resets(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        t.sync()
        stats2 = t.sync()
        assert stats2.total_bytes == 0 and stats2.index == 1

    def test_label_accounting(self):
        t = CommTracker(2)
        t.send(0, 1, 10, label="halo")
        t.sync(label="halo")
        t.send(0, 1, 20, label="spmv")
        t.sync(label="spmv")
        assert t.label_bytes == {"halo": 10, "spmv": 20}
        assert t.label_syncs == {"halo": 1, "spmv": 1}

    def test_totals(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        t.sync()
        t.send(1, 0, 30)
        t.sync()
        assert t.total_bytes == 40
        assert t.num_syncs == 2
        assert t.total_h == 40
        assert t.max_send_per_node() == 30

    def test_empty_tracker(self):
        t = CommTracker(2)
        assert t.max_send_per_node() == 0
        assert t.total_h == 0
