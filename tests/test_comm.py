"""CommTracker: sends, supersteps, h-relations."""

import numpy as np
import pytest

from repro.dist.comm import CommTracker
from repro.util.errors import InvalidValue


class TestSend:
    def test_basic_send(self):
        t = CommTracker(3)
        t.send(0, 1, 100)
        stats = t.sync()
        assert stats.sent[0] == 100 and stats.received[1] == 100
        assert stats.messages == 1

    def test_self_send_free(self):
        t = CommTracker(2)
        t.send(0, 0, 1000)
        assert t.sync().total_bytes == 0

    def test_empty_message_elided(self):
        t = CommTracker(2)
        t.send(0, 1, 0)
        assert t.sync().messages == 0

    def test_out_of_range(self):
        t = CommTracker(2)
        with pytest.raises(InvalidValue):
            t.send(0, 2, 10)
        with pytest.raises(InvalidValue):
            t.send(-1, 0, 10)

    def test_negative_bytes(self):
        t = CommTracker(2)
        with pytest.raises(InvalidValue):
            t.send(0, 1, -5)

    def test_zero_procs_rejected(self):
        with pytest.raises(InvalidValue):
            CommTracker(0)


class TestCollectives:
    def test_broadcast(self):
        t = CommTracker(4)
        t.broadcast(1, 10)
        stats = t.sync()
        assert stats.sent[1] == 30  # 3 receivers
        assert stats.received[0] == 10

    def test_allgather(self):
        t = CommTracker(3)
        t.allgather(np.array([10, 20, 30]))
        stats = t.sync()
        np.testing.assert_array_equal(stats.sent, [20, 40, 60])
        # everyone receives everyone else's share
        np.testing.assert_array_equal(stats.received, [50, 40, 30])

    def test_allgather_size_check(self):
        t = CommTracker(3)
        with pytest.raises(InvalidValue):
            t.allgather(np.array([1, 2]))

    def test_allreduce_scalar(self):
        t = CommTracker(4)
        t.allreduce_scalar()
        stats = t.sync()
        assert stats.sent[0] == 24  # 8 bytes to 3 peers


class TestSupersteps:
    def test_h_relation(self):
        t = CommTracker(3)
        t.send(0, 1, 100)
        t.send(2, 1, 50)
        stats = t.sync()
        # node 1 receives 150 — that's the h
        assert stats.h == 150

    def test_sync_resets(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        t.sync()
        stats2 = t.sync()
        assert stats2.total_bytes == 0 and stats2.index == 1

    def test_label_accounting(self):
        t = CommTracker(2)
        t.send(0, 1, 10, label="halo")
        t.sync(label="halo")
        t.send(0, 1, 20, label="spmv")
        t.sync(label="spmv")
        assert t.label_bytes == {"halo": 10, "spmv": 20}
        assert t.label_syncs == {"halo": 1, "spmv": 1}

    def test_totals(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        t.sync()
        t.send(1, 0, 30)
        t.sync()
        assert t.total_bytes == 40
        assert t.num_syncs == 2
        assert t.total_h == 40
        assert t.max_send_per_node() == 30

    def test_empty_tracker(self):
        t = CommTracker(2)
        assert t.max_send_per_node() == 0
        assert t.total_h == 0


class TestSplitPhase:
    def test_post_wait_equals_sync(self):
        """wait(post()) with no overlap is an eager superstep."""
        t = CommTracker(3)
        t.send(0, 1, 100)
        h = t.post(label="halo")
        stats = t.wait(h)
        assert stats.h == 100 and stats.label == "halo"
        assert stats.posted and stats.overlapped_work == 0.0
        assert t.label_syncs == {"halo": 1}

    def test_sends_after_post_belong_to_next_superstep(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        h = t.post()
        t.send(0, 1, 99)          # lands in the *next* exchange
        assert t.wait(h).total_bytes == 10
        assert t.sync().total_bytes == 99

    def test_overlap_tagging_accumulates(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        h = t.post()
        h.overlap(100.0).overlap(50.0)
        assert t.wait(h).overlapped_work == 150.0

    def test_wait_fifo_default(self):
        t = CommTracker(2)
        t.send(0, 1, 1)
        first = t.post(label="a")
        t.send(0, 1, 2)
        t.post(label="b")
        stats = t.wait()          # FIFO: the "a" exchange
        assert stats.label == "a" and stats.total_bytes == 1
        assert first.closed and t.in_flight == 1
        t.wait()

    def test_wait_errors(self):
        t = CommTracker(2)
        with pytest.raises(InvalidValue):
            t.wait()              # nothing posted
        h = t.post()
        t.wait(h)
        with pytest.raises(InvalidValue):
            t.wait(h)             # double wait
        with pytest.raises(InvalidValue):
            h.overlap(10.0)       # overlap after wait
        other = CommTracker(2).post()
        with pytest.raises(InvalidValue):
            t.wait(other)         # foreign handle

    def test_negative_overlap_rejected(self):
        t = CommTracker(2)
        h = t.post()
        with pytest.raises(InvalidValue):
            h.overlap(-1.0)
        t.wait(h)

    def test_total_overlapped_work(self):
        t = CommTracker(2)
        t.send(0, 1, 10)
        t.wait(t.post().overlap(64.0))
        t.sync()
        assert t.total_overlapped_work == 64.0


class TestResetAndContext:
    def test_reset_forgets_everything(self):
        t = CommTracker(2)
        t.send(0, 1, 10, label="x")
        t.sync(label="x")
        t.send(0, 1, 20)
        t.post()
        t.reset()
        assert t.num_syncs == 0 and t.total_bytes == 0
        assert t.label_bytes == {} and t.label_syncs == {}
        assert t.in_flight == 0
        assert t.sync().total_bytes == 0   # pending sends cleared too

    def test_context_manager_clean_exit(self):
        with CommTracker(2) as t:
            t.send(0, 1, 10)
            t.wait(t.post())
        assert t.num_syncs == 1

    def test_context_manager_flags_leaked_exchange(self):
        with pytest.raises(InvalidValue):
            with CommTracker(2) as t:
                t.send(0, 1, 10)
                t.post()          # never waited: a simulated deadlock

    def test_context_manager_does_not_mask_errors(self):
        with pytest.raises(RuntimeError):
            with CommTracker(2) as t:
                t.post()
                raise RuntimeError("boom")


class TestResolveCommMode:
    def test_explicit_wins(self, monkeypatch):
        from repro.dist.comm import resolve_comm_mode
        monkeypatch.setenv("REPRO_OVERLAP", "1")
        assert resolve_comm_mode("eager") == "eager"

    def test_env_force(self, monkeypatch):
        from repro.dist.comm import resolve_comm_mode
        for raw, expect in (("1", "overlap"), ("on", "overlap"),
                            ("overlap", "overlap"), ("0", "eager"),
                            ("", "eager"), ("eager", "eager")):
            monkeypatch.setenv("REPRO_OVERLAP", raw)
            assert resolve_comm_mode() == expect

    def test_default_eager(self, monkeypatch):
        from repro.dist.comm import resolve_comm_mode
        monkeypatch.delenv("REPRO_OVERLAP", raising=False)
        assert resolve_comm_mode() == "eager"

    def test_garbage_rejected(self, monkeypatch):
        from repro.dist.comm import resolve_comm_mode
        monkeypatch.setenv("REPRO_OVERLAP", "sometimes")
        with pytest.raises(InvalidValue):
            resolve_comm_mode()
        with pytest.raises(InvalidValue):
            resolve_comm_mode("async")
