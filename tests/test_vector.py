"""The Vector container: construction, mutation, export, versioning."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, DomainMismatch, InvalidValue


class TestConstruction:
    def test_sparse_empty(self):
        v = Vector.sparse(5)
        assert v.size == 5 and v.nvals == 0

    def test_dense_fill(self):
        v = Vector.dense(4, 2.5)
        assert v.nvals == 4
        np.testing.assert_array_equal(v.to_dense(), [2.5] * 4)

    def test_from_dense(self):
        v = Vector.from_dense([1.0, 2.0, 3.0])
        assert v.size == 3 and v.is_dense()

    def test_from_dense_dtype_override(self):
        v = Vector.from_dense([1, 2], dtype=np.float32)
        assert v.dtype == np.float32

    def test_from_dense_rejects_2d(self):
        with pytest.raises(InvalidValue):
            Vector.from_dense(np.zeros((2, 2)))

    def test_from_coo(self):
        v = Vector.from_coo([1, 3], [5.0, 7.0], 5)
        assert v.nvals == 2
        assert v.extract_element(3) == 7.0
        assert v.extract_element(0) is None

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidValue):
            Vector(-1)

    def test_zero_size_ok(self):
        v = Vector(0)
        assert v.size == 0 and v.nvals == 0

    def test_unsupported_dtype(self):
        with pytest.raises(DomainMismatch):
            Vector(3, dtype=np.complex64)

    def test_bool_vector(self):
        v = Vector.from_coo([0, 2], [True, True], 3, dtype=bool)
        assert v.dtype == np.bool_ and v.nvals == 2


class TestElementAccess:
    def test_set_get(self):
        v = Vector.sparse(4)
        v.set_element(2, 9.0)
        assert v.extract_element(2) == 9.0
        assert v.nvals == 1

    def test_remove(self):
        v = Vector.dense(3, 1.0)
        v.remove_element(1)
        assert v.extract_element(1) is None
        assert v.nvals == 2

    def test_out_of_range(self):
        v = Vector.sparse(3)
        with pytest.raises(InvalidValue):
            v.extract_element(3)
        with pytest.raises(InvalidValue):
            v.set_element(-1, 1.0)
        with pytest.raises(InvalidValue):
            v.remove_element(5)


class TestBuild:
    def test_build_simple(self):
        v = Vector.sparse(6)
        v.build([0, 5], [1.0, 2.0])
        assert v.nvals == 2 and v.extract_element(5) == 2.0

    def test_build_duplicates_require_dup_op(self):
        v = Vector.sparse(4)
        with pytest.raises(InvalidValue):
            v.build([1, 1], [1.0, 2.0])

    def test_build_duplicates_with_plus(self):
        v = Vector.sparse(4)
        v.build([1, 1, 2], [1.0, 2.0, 5.0], dup_op=grb.ops.plus)
        assert v.extract_element(1) == 3.0
        assert v.extract_element(2) == 5.0

    def test_build_duplicates_with_max(self):
        v = Vector.sparse(4)
        v.build([0, 0, 0], [3.0, 9.0, 1.0], dup_op=grb.ops.max_)
        assert v.extract_element(0) == 9.0

    def test_build_on_nonempty_raises(self):
        v = Vector.dense(3, 1.0)
        with pytest.raises(InvalidValue):
            v.build([0], [1.0])

    def test_build_index_out_of_range(self):
        v = Vector.sparse(3)
        with pytest.raises(InvalidValue):
            v.build([3], [1.0])

    def test_build_shape_mismatch(self):
        v = Vector.sparse(3)
        with pytest.raises(DimensionMismatch):
            v.build([0, 1], [1.0])


class TestWholeContainer:
    def test_clear(self):
        v = Vector.dense(3, 2.0)
        v.clear()
        assert v.nvals == 0 and v.size == 3

    def test_fill(self):
        v = Vector.sparse(3)
        v.fill(7.0)
        assert v.is_dense()
        np.testing.assert_array_equal(v.to_dense(), [7.0] * 3)

    def test_dup_independent(self):
        v = Vector.from_dense([1.0, 2.0])
        w = v.dup()
        w.set_element(0, 99.0)
        assert v.extract_element(0) == 1.0

    def test_to_coo_sorted(self):
        v = Vector.from_coo([3, 1], [9.0, 5.0], 5)
        idx, vals = v.to_coo()
        np.testing.assert_array_equal(idx, [1, 3])
        np.testing.assert_array_equal(vals, [5.0, 9.0])

    def test_to_dense_fill(self):
        v = Vector.from_coo([1], [2.0], 3)
        np.testing.assert_array_equal(v.to_dense(fill=-1.0), [-1.0, 2.0, -1.0])


class TestVersioning:
    def test_mutations_bump_version(self):
        v = Vector.sparse(3)
        versions = [v.version]
        v.set_element(0, 1.0)
        versions.append(v.version)
        v.fill(2.0)
        versions.append(v.version)
        v.remove_element(1)
        versions.append(v.version)
        v.clear()
        versions.append(v.version)
        assert versions == sorted(set(versions)), "each mutation bumps"

    def test_read_does_not_bump(self):
        v = Vector.dense(3, 1.0)
        before = v.version
        v.extract_element(0)
        v.to_dense()
        v.to_coo()
        assert v.version == before


class TestEquality:
    def test_equal(self):
        a = Vector.from_coo([0, 2], [1.0, 2.0], 3)
        b = Vector.from_coo([0, 2], [1.0, 2.0], 3)
        assert a == b

    def test_different_pattern(self):
        a = Vector.from_coo([0], [1.0], 3)
        b = Vector.from_coo([1], [1.0], 3)
        assert a != b

    def test_different_values(self):
        a = Vector.from_coo([0], [1.0], 3)
        b = Vector.from_coo([0], [2.0], 3)
        assert a != b

    def test_different_size(self):
        assert Vector.dense(3, 1.0) != Vector.dense(4, 1.0)

    def test_hidden_values_ignored(self):
        # absent positions must not affect equality even if storage differs
        a = Vector.dense(3, 5.0)
        a.remove_element(1)
        b = Vector.from_coo([0, 2], [5.0, 5.0], 3)
        assert a == b

    def test_not_comparable_to_list(self):
        assert (Vector.dense(2, 1.0) == [1.0, 1.0]) is NotImplemented or True
