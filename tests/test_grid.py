"""Grid geometry: indexing, neighbours, coarsening, injection."""

import numpy as np
import pytest

from repro.grid import Grid3D, stencil_27pt_coo, stencil_offsets
from repro.util.errors import InvalidValue


class TestIndexing:
    def test_roundtrip_all_points(self):
        g = Grid3D(3, 4, 5)
        i = np.arange(g.npoints)
        ix, iy, iz = g.coords(i)
        np.testing.assert_array_equal(g.index(ix, iy, iz), i)

    def test_x_fastest(self):
        g = Grid3D(4, 4, 4)
        assert g.index(1, 0, 0) == 1
        assert g.index(0, 1, 0) == 4
        assert g.index(0, 0, 1) == 16

    def test_npoints(self):
        assert Grid3D(2, 3, 4).npoints == 24

    def test_invalid_dims(self):
        with pytest.raises(InvalidValue):
            Grid3D(0, 3, 3)

    def test_in_bounds(self):
        g = Grid3D(2, 2, 2)
        assert g.in_bounds(0, 0, 0) and g.in_bounds(1, 1, 1)
        assert not g.in_bounds(2, 0, 0)
        assert not g.in_bounds(0, -1, 0)

    def test_all_coords_shape(self):
        g = Grid3D(3, 3, 3)
        ix, iy, iz = g.all_coords()
        assert ix.shape == (27,)
        assert iz[-1] == 2


class TestNeighbours:
    def test_interior_has_26(self):
        g = Grid3D(3, 3, 3)
        centre = g.index(1, 1, 1)
        assert len(list(g.neighbours(centre))) == 26

    def test_corner_has_7(self):
        g = Grid3D(3, 3, 3)
        assert len(list(g.neighbours(0))) == 7

    def test_neighbours_distinct_and_exclude_self(self):
        g = Grid3D(4, 4, 4)
        i = g.index(2, 2, 2)
        neigh = list(g.neighbours(int(i)))
        assert i not in neigh
        assert len(set(neigh)) == len(neigh)

    def test_row_degree_matches_neighbours(self):
        g = Grid3D(3, 4, 2)
        deg = g.row_degree()
        for i in range(g.npoints):
            assert deg[i] == len(list(g.neighbours(i))) + 1  # + diagonal

    def test_row_degree_range(self):
        deg = Grid3D(4, 4, 4).row_degree()
        assert deg.min() == 8 and deg.max() == 27

    def test_degenerate_1d_grid(self):
        g = Grid3D(5, 1, 1)
        deg = g.row_degree()
        assert deg.max() == 3 and deg.min() == 2


class TestCoarsening:
    def test_can_coarsen_even(self):
        assert Grid3D(4, 4, 4).can_coarsen()
        assert not Grid3D(3, 4, 4).can_coarsen()
        assert not Grid3D(2, 2, 1).can_coarsen()

    def test_coarsen_halves(self):
        assert Grid3D(8, 4, 6).coarsen().dims == (4, 2, 3)

    def test_coarsen_odd_raises(self):
        with pytest.raises(InvalidValue):
            Grid3D(3, 4, 4).coarsen()

    def test_max_mg_levels(self):
        assert Grid3D(16, 16, 16).max_mg_levels() == 5
        assert Grid3D(8, 8, 8).max_mg_levels() == 4
        assert Grid3D(3, 3, 3).max_mg_levels() == 1
        assert Grid3D(24, 24, 24).max_mg_levels() == 4  # 24->12->6->3

    def test_injection_indices(self):
        g = Grid3D(4, 4, 4)
        inj = g.injection_indices()
        coarse = g.coarsen()
        assert inj.shape == (coarse.npoints,)
        # coarse point (1,1,1) -> fine (2,2,2)
        ci = coarse.index(1, 1, 1)
        assert inj[ci] == g.index(2, 2, 2)

    def test_injection_unique(self):
        inj = Grid3D(6, 4, 8).injection_indices()
        assert np.unique(inj).size == inj.size


class TestStencil:
    def test_offsets_count(self):
        assert len(stencil_offsets()) == 27
        assert (0, 0, 0) in stencil_offsets()

    def test_nnz_matches_degree(self):
        g = Grid3D(4, 3, 5)
        rows, cols, vals = stencil_27pt_coo(g)
        assert rows.size == g.row_degree().sum()

    def test_values(self):
        g = Grid3D(3, 3, 3)
        rows, cols, vals = stencil_27pt_coo(g)
        diag = rows == cols
        assert (vals[diag] == 26.0).all()
        assert (vals[~diag] == -1.0).all()

    def test_symmetry(self):
        import scipy.sparse as sp
        g = Grid3D(4, 4, 4)
        rows, cols, vals = stencil_27pt_coo(g)
        A = sp.csr_matrix((vals, (rows, cols)), shape=(g.npoints, g.npoints))
        assert abs(A - A.T).nnz == 0

    def test_interior_row_sums_zero(self):
        import scipy.sparse as sp
        g = Grid3D(4, 4, 4)
        rows, cols, vals = stencil_27pt_coo(g)
        A = sp.csr_matrix((vals, (rows, cols)), shape=(g.npoints, g.npoints))
        sums = np.asarray(A.sum(axis=1)).ravel()
        interior = g.index(1, 1, 1)
        assert sums[interior] == 0.0  # 26 - 26 neighbours

    def test_custom_values(self):
        g = Grid3D(2, 2, 2)
        _, _, vals = stencil_27pt_coo(g, diag_value=8.0, offdiag_value=-0.5)
        assert set(np.unique(vals)) == {8.0, -0.5}
