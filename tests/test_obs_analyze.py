"""The obs *consumer* layer: trace diffing, flamegraphs, manifest
diffing, the grown CLI, Prometheus hardening, triage wiring, and span
coverage for the producers PR 6 skipped."""

from __future__ import annotations

import io
import json
import sys

import pytest

from repro import obs
from repro.hpcg.driver import main as driver_main, run_hpcg
from repro.obs import analyze, flame, manifest_diff
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import InvalidValue

sys.path.insert(0, "benchmarks")   # check_trend is a script, not a package
import check_trend  # noqa: E402


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """No context leaks across tests (robust under REPRO_TRACE=1)."""
    obs.reset()
    yield
    obs.reset()


def _span(id, parent, name, wall, modelled=0.0, category="t", args=None):
    return {
        "id": id, "parent_id": parent, "name": name, "category": category,
        "thread": 1, "start": 0.0, "wall_seconds": wall,
        "modelled_seconds": modelled, "args": args or {},
    }


#: A tiny hand-built forest: root(10) -> {a(4) -> leaf(1), a(2)}.
FOREST = [
    _span(1, None, "root", 10.0, modelled=8.0),
    _span(2, 1, "a", 4.0, modelled=3.0, args={"level": 0}),
    _span(3, 2, "leaf", 1.0, modelled=1.0),
    _span(4, 1, "a", 2.0, modelled=2.0, args={"level": 1}),
]


def _traced_solve(nx=16, iters=20):
    with obs.run() as ctx:
        run_hpcg(nx, max_iters=iters)
    return ctx.tracer.as_dicts()


class TestAggregate:
    def test_totals_counts_and_self_time(self):
        stats = analyze.aggregate(FOREST)
        assert stats["root"].count == 1
        assert stats["root"].wall == 10.0
        # root's self excludes its two direct "a" children (4 + 2)
        assert stats["root"].wall_self == pytest.approx(4.0)
        assert stats["a"].count == 2
        assert stats["a"].wall == pytest.approx(6.0)
        assert stats["a"].wall_self == pytest.approx(5.0)   # 3 + 2
        assert stats["leaf"].wall_self == pytest.approx(1.0)
        assert stats["root"].modelled_self == pytest.approx(3.0)

    def test_group_by_level_and_category(self):
        by_level = analyze.aggregate(FOREST, by="level")
        assert by_level["L0"].wall == pytest.approx(4.0)
        assert by_level["L1"].wall == pytest.approx(2.0)
        assert by_level["(no level)"].count == 2
        # mg/L{i}-style names resolve the level from the name alone
        named = [_span(1, None, "mg/L2/spmv", 1.0)]
        assert "L2" in analyze.aggregate(named, by="level")
        by_cat = analyze.aggregate(FOREST, by="category")
        assert by_cat["t"].count == 4
        with pytest.raises(InvalidValue):
            analyze.aggregate(FOREST, by="bogus")

    def test_instants_are_skipped(self):
        spans = FOREST + [_span(9, None, "blip", 0.0,
                                args={"instant": True})]
        assert "blip" not in analyze.aggregate(spans)

    def test_overlapping_children_clamp_at_zero(self):
        spans = [_span(1, None, "p", 1.0), _span(2, 1, "c", 3.0)]
        assert analyze.aggregate(spans)["p"].wall_self == 0.0


class TestLoadSpans:
    def test_written_trace_and_bare_forms(self, tmp_path):
        with obs.run() as ctx:
            with obs.span("x"):
                pass
        path = tmp_path / "trace.json"
        obs.export.write_trace(str(path), ctx)
        spans = analyze.load_spans(str(path))
        assert [s["name"] for s in spans] == ["x"]
        assert analyze.load_spans({"spans": FOREST}) == FOREST
        assert analyze.load_spans(FOREST) == FOREST

    def test_reconstructs_from_chrome_events(self):
        events = [
            {"name": "m", "ph": "M", "pid": 1, "tid": 0, "args": {}},
            {"name": "s", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0,
             "dur": 2e6, "args": {"modelled_seconds": 0.5, "id": 1}},
        ]
        spans = analyze.load_spans({"traceEvents": events})
        assert len(spans) == 1
        assert spans[0]["wall_seconds"] == pytest.approx(2.0)
        assert spans[0]["modelled_seconds"] == pytest.approx(0.5)

    def test_rejects_unrecognised_documents(self):
        with pytest.raises(InvalidValue):
            analyze.load_spans({"nope": 1})
        with pytest.raises(InvalidValue):
            analyze.load_spans([{"no_name": True}])


class TestDiffTraces:
    @staticmethod
    def _merge(runs):
        """Concatenate traced runs, keeping span ids globally unique."""
        merged = []
        for k, spans in enumerate(runs):
            offset = (k + 1) * 1_000_000
            for span in spans:
                span = dict(span)
                span["id"] += offset
                if span["parent_id"] is not None:
                    span["parent_id"] += offset
                merged.append(span)
        return merged

    def test_identical_config_pair_has_no_significant_deltas(self):
        import gc

        run_hpcg(16, max_iters=20)   # warm-up: imports + plan caches
        # interleave three runs per side so clock-speed drift on a
        # loaded box lands on both sides alike; a GC pause mid-span is
        # indistinguishable from a regression, so keep GC out entirely
        old, new = [], []
        gc.collect()
        gc.disable()
        try:
            for _ in range(3):
                old.append(_traced_solve())
                new.append(_traced_solve())
        finally:
            gc.enable()
        diff = analyze.diff_traces(self._merge(old), self._merge(new))
        if diff.significant_rows():
            # one scheduler hiccup can dirty the merged comparison, but
            # identical configs must admit SOME clean pairing — a real
            # regression sits on every run of one side and dirties all 9
            pairs = [analyze.diff_traces(o, n) for o in old for n in new]
            diff = min(pairs, key=lambda d: len(d.significant_rows()))
        assert diff.significant_rows() == [], \
            analyze.format_table(diff, top=5)
        assert "no significant" in analyze.summarize(diff)

    def test_fused_vs_unfused_ranks_smoother_first(self, monkeypatch):
        run_hpcg(16, max_iters=20)   # warm both lanes' caches
        fused = _traced_solve()
        monkeypatch.setenv("REPRO_FUSED", "0")
        run_hpcg(16, max_iters=20)
        unfused = _traced_solve()
        monkeypatch.delenv("REPRO_FUSED")
        diff = analyze.diff_traces(fused, unfused)
        significant = diff.significant_rows()
        assert significant, "disabling the fused lane must be visible"
        top = significant[0]
        assert top.key == "smoother/rbgs_sweep", \
            analyze.format_table(diff, top=5)
        assert top.delta("wall_self") > 0
        # wall moved, the BSP model did not: execution, not model
        assert top.verdict == "execution"

    def test_modelled_only_movement_is_attributed_to_model(self):
        old = [_span(1, None, "superstep/halo", 1.0, modelled=1.0)]
        new = [_span(1, None, "superstep/halo", 1.0, modelled=3.0)]
        diff = analyze.diff_traces(old, new)
        (row,) = diff.significant_rows()
        assert row.verdict == "model"
        both = analyze.diff_traces(
            old, [_span(1, None, "superstep/halo", 9.0, modelled=3.0)])
        assert both.significant_rows()[0].verdict == "both"

    def test_added_and_removed_keys(self):
        old = [_span(1, None, "gone", 1.0)]
        new = [_span(1, None, "fresh", 1.0)]
        rows = {r.key: r for r in analyze.diff_traces(old, new).rows}
        assert rows["gone"].verdict == "removed"
        assert rows["fresh"].verdict == "added"
        assert rows["fresh"].significant and rows["gone"].significant

    def test_noise_thresholds(self):
        old = [_span(1, None, "k", 1.0)]
        diff = analyze.diff_traces(old, [_span(1, None, "k", 1.2)])
        assert not diff.significant_rows()       # +20% < 25% default
        diff = analyze.diff_traces(old, [_span(1, None, "k", 1.2)],
                                   rel_threshold=0.1)
        assert diff.significant_rows()
        tiny = analyze.diff_traces([_span(1, None, "k", 0.001)],
                                   [_span(1, None, "k", 0.003)])
        assert not tiny.significant_rows()       # under the 2ms floor

    def test_as_dict_is_json_able(self):
        diff = analyze.diff_traces(FOREST, FOREST)
        payload = json.loads(json.dumps(diff.as_dict()))
        assert payload["significant"] == 0
        assert {r["key"] for r in payload["rows"]} == {"root", "a", "leaf"}


class TestFlame:
    def test_folded_stacks_use_self_time(self):
        stacks = flame.folded_stacks(FOREST)
        assert stacks == {
            "root": 4_000_000,
            "root;a": 5_000_000,
            "root;a;leaf": 1_000_000,
        }

    def test_round_trip(self):
        stacks = flame.folded_stacks(FOREST)
        assert flame.parse_folded(flame.folded_lines(stacks)) == stacks
        with pytest.raises(InvalidValue):
            flame.parse_folded(["no trailing count"])

    def test_real_trace_round_trips_and_covers_producers(self):
        spans = _traced_solve(nx=8, iters=5)
        stacks = flame.folded_stacks(spans)
        assert flame.parse_folded(flame.folded_lines(stacks)) == stacks
        assert any("smoother/rbgs_sweep" in stack for stack in stacks)

    def test_modelled_clock_and_orphans(self):
        stacks = flame.folded_stacks(FOREST, clock="modelled")
        assert stacks["root"] == 3_000_000
        orphan = [_span(5, 999, "lost", 1.0)]   # parent was dropped
        assert flame.folded_stacks(orphan) == {"lost": 1_000_000}
        with pytest.raises(InvalidValue):
            flame.folded_stacks(FOREST, clock="cpu")

    def test_render_top(self):
        out = flame.render_top(flame.folded_stacks(FOREST), top=2)
        lines = out.splitlines()
        assert "root;a" in lines[1]              # biggest stack first
        assert "%" in lines[1] and "█" in lines[1]
        assert "(1 more)" in lines[-1]
        assert "no wall self time" in flame.render_top({})


class TestManifestDiff:
    def test_identical_configs(self, tmp_path):
        with obs.run() as ctx:
            run_hpcg(8, max_iters=2, mg_levels=2)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        obs.export.write_manifest(str(a), ctx.build_manifest())
        with obs.run() as ctx2:
            run_hpcg(8, max_iters=2, mg_levels=2)
        obs.export.write_manifest(str(b), ctx2.build_manifest())
        diff = manifest_diff.diff_manifests(str(a), str(b))
        assert diff["identical"], diff
        assert "identical configuration" in \
            manifest_diff.format_manifest_diff(diff)

    def test_forced_substrate_change_carries_reason(self, monkeypatch):
        import repro.hpcg.problem as problem_mod

        with obs.run() as ctx:
            problem_mod.generate_problem(12)
        base = ctx.build_manifest()
        monkeypatch.setenv("REPRO_SUBSTRATE", "csr")
        with obs.run() as ctx2:
            problem_mod.generate_problem(12)
        forced = ctx2.build_manifest()
        diff = manifest_diff.diff_manifests(base, forced)
        assert not diff["identical"]
        assert diff["sections"]["toggles"]["changed"][
            "substrate_force"]["new"] == "csr"
        assert diff["sections"]["environment"]["added"][
            "REPRO_SUBSTRATE"] == "csr"
        changed = diff["decisions"]["changed"]
        assert changed, "the forced format must change recorded decisions"
        outcomes = " ".join(" ".join((change["old"] or {}) | (change["new"] or {}))
                            for change in changed)
        assert "(env)" in outcomes and "(heuristic)" in outcomes
        text = manifest_diff.format_manifest_diff(diff)
        assert "substrate decisions" in text and "(env)" in text

    def test_config_and_scalar_changes(self):
        a = {"run_id": "r1", "package_version": "1", "config": {"nx": 8},
             "substrate_decisions": []}
        b = {"run_id": "r2", "package_version": "2",
             "config": {"nx": 16, "extra": True}, "substrate_decisions": []}
        diff = manifest_diff.diff_manifests(a, b)
        assert diff["scalars"]["package_version"] == {"old": "1", "new": "2"}
        config = diff["sections"]["config"]
        assert config["changed"]["nx"] == {"old": 8, "new": 16}
        assert config["added"] == {"extra": True}


class TestObsCLI:
    def _write_pair(self, tmp_path, monkeypatch=None):
        run_hpcg(8, max_iters=5, mg_levels=2)
        paths = {}
        for tag in ("old", "new"):
            with obs.run(name=tag) as ctx:
                run_hpcg(8, max_iters=5, mg_levels=2)
            paths[tag] = tmp_path / f"{tag}.json"
            obs.export.write_trace(str(paths[tag]), ctx)
        return paths

    def test_diff_command(self, tmp_path, capsys):
        paths = self._write_pair(tmp_path)
        out_json = tmp_path / "diff.json"
        rc = obs_main(["diff", str(paths["old"]), str(paths["new"]),
                       "--json", str(out_json)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace diff" in out and "attribution:" in out
        payload = json.loads(out_json.read_text())
        assert "rows" in payload and payload["by"] == "name"
        assert obs_main(["diff", str(paths["old"]), str(paths["new"]),
                         "--by", "level", "--significant-only"]) == 0

    def test_flame_and_top_commands(self, tmp_path, capsys):
        paths = self._write_pair(tmp_path)
        folded = tmp_path / "folded.txt"
        assert obs_main(["flame", str(paths["old"]),
                         "--out", str(folded)]) == 0
        stacks = flame.parse_folded(folded.read_text().splitlines())
        assert any("smoother/rbgs_sweep" in s for s in stacks)
        capsys.readouterr()
        assert obs_main(["flame", str(paths["old"]), "--top", "5"]) == 0
        assert "stacks by wall self time" in capsys.readouterr().out
        assert obs_main(["top", str(paths["old"]), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "self (s)" in out and "share" in out

    def test_diff_manifest_command(self, tmp_path, capsys):
        with obs.run() as ctx:
            pass
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        obs.export.write_manifest(str(a), ctx.build_manifest())
        obs.export.write_manifest(str(b), ctx.build_manifest())
        out_json = tmp_path / "md.json"
        assert obs_main(["diff-manifest", str(a), str(b),
                         "--json", str(out_json)]) == 0
        assert "manifest diff" in capsys.readouterr().out
        assert json.loads(out_json.read_text())["identical"]

    def test_errors_exit_nonzero(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert obs_main(["diff", str(missing), str(missing)]) == 1
        assert obs_main(["flame", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err


class TestValidateCLI:
    def _artifacts(self, tmp_path):
        with obs.run() as ctx:
            with obs.span("x"):
                pass
        trace = tmp_path / "trace.json"
        manifest = tmp_path / "manifest.json"
        metrics = tmp_path / "metrics.json"
        obs.export.write_trace(str(trace), ctx)
        obs.export.write_metrics(str(metrics), ctx)
        obs.export.write_manifest(str(manifest), ctx.build_manifest())
        return trace, metrics, manifest

    def test_positional_paths_sniff_their_kind(self, tmp_path, capsys):
        trace, metrics, manifest = self._artifacts(tmp_path)
        rc = obs_main(["validate", str(trace), str(metrics), str(manifest)])
        assert rc == 0
        out = capsys.readouterr().out
        for kind in ("trace", "metrics", "manifest"):
            assert f"ok: {kind}" in out

    def test_directory_reports_per_file(self, tmp_path, capsys):
        self._artifacts(tmp_path)
        (tmp_path / "broken.json").write_text('{"traceEvents": []}')
        (tmp_path / "noise.txt").write_text("not json, not scanned")
        rc = obs_main(["validate", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        # every json file is reported, not just the first failure
        assert captured.out.count("ok:") == 3
        assert "INVALID" in captured.err and "broken.json" in captured.err
        assert "1 of 4" in captured.err

    def test_nothing_to_validate(self, capsys):
        assert obs_main(["validate"]) == 2
        assert "nothing to validate" in capsys.readouterr().err

    def test_tagged_flags_still_work(self, tmp_path):
        trace, metrics, manifest = self._artifacts(tmp_path)
        assert obs_main(["validate", "--trace", str(trace),
                         "--metrics", str(metrics),
                         "--manifest", str(manifest)]) == 0
        # a tagged flag pins the kind: a manifest is not a valid trace
        assert obs_main(["validate", "--trace", str(manifest)]) == 1


class TestCheckTrendTriage:
    def _bench_files(self, tmp_path, regressed):
        base = {"benches": {"b::x": {"seconds": 1.0, "outcome": "passed"}},
                "metrics": {"b::x": {"fused_speedup": 3.0}},
                "host": "h", "created_at": 0}
        fresh = json.loads(json.dumps(base))
        if regressed:
            fresh["metrics"]["b::x"]["fused_speedup"] = 0.5
        b, f = tmp_path / "base.json", tmp_path / "fresh.json"
        b.write_text(json.dumps(base))
        f.write_text(json.dumps(fresh))
        return b, f

    def _trace_pair(self, tmp_path):
        old = [_span(1, None, "smoother/rbgs_sweep", 0.1)]
        new = [_span(1, None, "smoother/rbgs_sweep", 0.4)]
        po, pn = tmp_path / "told.json", tmp_path / "tnew.json"
        po.write_text(json.dumps({"spans": old}))
        pn.write_text(json.dumps({"spans": new}))
        return po, pn

    def test_regression_attaches_span_attribution(self, tmp_path, capsys):
        b, f = self._bench_files(tmp_path, regressed=True)
        po, pn = self._trace_pair(tmp_path)
        triage_json = tmp_path / "triage.json"
        rc = check_trend.main([str(b), str(f), "--triage", str(po), str(pn),
                               "--triage-json", str(triage_json)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "span-level triage" in out
        assert "smoother/rbgs_sweep" in out
        assert "execution" in out and "attribution:" in out
        payload = json.loads(triage_json.read_text())
        assert payload["rows"][0]["key"] == "smoother/rbgs_sweep"

    def test_passing_check_skips_triage(self, tmp_path, capsys):
        b, f = self._bench_files(tmp_path, regressed=False)
        po, pn = self._trace_pair(tmp_path)
        rc = check_trend.main([str(b), str(f),
                               "--triage", str(po), str(pn)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "triage skipped" in out
        assert "smoother/rbgs_sweep" not in out

    def test_triage_failure_never_masks_the_gate(self, tmp_path, capsys):
        b, f = self._bench_files(tmp_path, regressed=True)
        rc = check_trend.main([str(b), str(f), "--triage",
                               str(tmp_path / "nope1"),
                               str(tmp_path / "nope2")])
        assert rc == 1
        assert "triage failed" in capsys.readouterr().out


class TestDriverCompareTrace:
    def test_compare_trace_prints_diff_and_report_section(
            self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert driver_main(["--nx", "8", "--iters", "3", "--mg-levels", "2",
                            "--trace-json", str(trace)]) == 0
        capsys.readouterr()
        rc = driver_main(["--nx", "8", "--iters", "3", "--mg-levels", "2",
                          "--compare-trace", str(trace), "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"trace comparison vs {trace}" in out
        assert "attribution:" in out
        assert "Trace Comparison:" in out
        assert "Aggregated By: name" in out


class TestPrometheusHardening:
    #: one exposition line: comment, blank, or sample with optional labels
    import re as _re
    _LINE = _re.compile(
        r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*"
        r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\""
        r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\")*\})?"
        r" -?[0-9.einfEINF+-]+)$"
    )

    def _assert_valid_exposition(self, text):
        families = set()
        for line in text.splitlines():
            assert self._LINE.match(line), f"invalid exposition line: {line!r}"
            if line.startswith("# TYPE"):
                families.add(line.split()[2])
        return families

    def test_full_registry_exposition_validates(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "operations").inc(3, fmt="csr")
        registry.gauge("residual", "latest residual").set(1e-9, solver="cg")
        registry.histogram("latency_seconds", "solve latency").observe(0.01)
        registry.series("trajectory", "residual history").observe(1.0)
        families = self._assert_valid_exposition(registry.to_prometheus())
        assert families == {"ops_total", "residual", "latency_seconds",
                            "trajectory"}

    def test_hostile_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "with\nnewline help \\ slash").inc(
            1, path='a\\b"c\nd')
        text = registry.to_prometheus()
        self._assert_valid_exposition(text)
        assert '\\\\b\\"c\\nd' in text
        assert "# HELP c_total with\\nnewline help \\\\ slash" in text

    def test_help_and_type_always_emitted(self):
        registry = MetricsRegistry()
        registry.counter("nohelp_total").inc(1)
        text = registry.to_prometheus()
        assert "# HELP nohelp_total\n" in text
        assert "# TYPE nohelp_total counter" in text
        self._assert_valid_exposition(text)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidValue):
            registry.counter("0starts_with_digit")
        with pytest.raises(InvalidValue):
            registry.counter("has-dash")
        with pytest.raises(InvalidValue):
            registry.counter("")

    def test_invalid_label_name_rejected_at_exposition(self):
        from repro.obs.metrics import _prom_line

        with pytest.raises(InvalidValue):
            _prom_line("m", {"bad-label": "v"}, 1)


class TestProducerSpans:
    def test_tune_probe_spans(self):
        from repro.tune import microbench

        with obs.run() as ctx:
            microbench.measure(microbench.SMOKE, name="test")
        spans = {s.name: s for s in ctx.tracer.spans}
        for probe in ("triad", "spmv", "rbgs", "message_cost", "overlap"):
            name = f"tune/probe/{probe}"
            assert name in spans, sorted(spans)
            assert spans[name].args["budget"] == "smoke"
        assert spans["tune/probe/triad"].args["bandwidth"] > 0
        assert "csr" in spans["tune/probe/spmv"].args["rates"]
        assert "csr" in spans["tune/probe/rbgs"].args["rates"]
        assert spans["tune/probe/message_cost"].args["g"] > 0
        assert 0.0 <= spans["tune/probe/overlap"].args[
            "overlap_efficiency"] <= 1.0

    def test_io_spans(self, tmp_path):
        from repro.graphblas import io as gio

        matrix = gio.random_matrix(16, 16, 0.2)
        path = tmp_path / "m.mtx"
        with obs.run() as ctx:
            gio.mmwrite(str(path), matrix)
            back = gio.mmread(str(path))
        assert back.nvals == matrix.nvals
        spans = {s.name: s for s in ctx.tracer.spans}
        assert spans["io/mmwrite"].args["nnz"] == matrix.nvals
        assert spans["io/mmread"].args["nnz"] == matrix.nvals
        assert spans["io/mmread"].args["nrows"] == 16

    def test_partition_spans(self):
        import numpy as np

        from repro.dist.partition import (Grid3DPartition, bfs_partition,
                                          halo_for_owners)
        from repro.grid import Grid3D, stencil_coo
        import scipy.sparse as sp

        grid = Grid3D(4, 4, 4)
        rows, cols, vals = stencil_coo(grid, "27pt")
        A = sp.csr_matrix((vals, (rows, cols)),
                          shape=(grid.npoints, grid.npoints))
        with obs.run() as ctx:
            part = Grid3DPartition(grid, 2)
            owners = part.owner(np.arange(grid.npoints))
            halo_for_owners(A.indptr, A.indices, owners, 2)
            bfs_partition(A.indptr, A.indices, grid.npoints, 2)
        spans = {s.name: s for s in ctx.tracer.spans}
        assert spans["dist/partition/grid3d"].args["p"] == 2
        assert spans["dist/partition/halo"].args["remote_entries"] > 0
        assert spans["dist/partition/bfs"].args["n"] == grid.npoints

    def test_producers_off_by_default(self, tmp_path):
        """Disabled observability stays disabled through the new seams."""
        from repro.graphblas import io as gio

        matrix = gio.random_matrix(8, 8, 0.2)
        with obs.disabled():
            assert obs.current() is None
            gio.mmwrite(str(tmp_path / "m.mtx"), matrix)
