"""mxv / vxm / mxm: semirings, masks, descriptors, accumulation."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas import descriptor as d
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, InvalidValue, OutputAliasing


def dense_mxv(A, x, add, mul, identity):
    """Reference mxv over dense arrays with explicit pattern handling."""
    rows, cols, vals = A.to_coo()
    n = A.nrows
    out = [identity] * n
    touched = [False] * n
    xp = {i: v for i, v in zip(*x.to_coo())}
    for r, c, v in zip(rows, cols, vals):
        if c in xp:
            prod = mul(v, xp[c])
            out[r] = prod if not touched[r] else add(out[r], prod)
            touched[r] = True
    return out, touched


@pytest.fixture()
def A():
    return Matrix.from_dense(
        [[2.0, 0.0, 1.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]]
    )


@pytest.fixture()
def x():
    return Vector.from_dense([1.0, 2.0, 3.0])


class TestPlainMxv:
    def test_plus_times(self, A, x):
        y = Vector.dense(3)
        grb.mxv(y, None, A, x)
        np.testing.assert_array_equal(y.to_dense(), [5.0, 6.0, 19.0])

    def test_matches_scipy(self, A, x):
        y = Vector.dense(3)
        grb.mxv(y, None, A, x)
        np.testing.assert_allclose(
            y.to_dense(), A.to_scipy() @ x.to_dense()
        )

    def test_transpose_descriptor(self, A, x):
        y = Vector.dense(3)
        grb.mxv(y, None, A, x, desc=d.transpose_matrix)
        np.testing.assert_allclose(
            y.to_dense(), A.to_scipy().T @ x.to_dense()
        )

    def test_rectangular(self):
        R = Matrix.from_coo([0, 1], [2, 5], [1.0, 1.0], 2, 6)
        xf = Vector.from_dense(np.arange(6, dtype=float))
        y = Vector.dense(2)
        grb.mxv(y, None, R, xf)
        np.testing.assert_array_equal(y.to_dense(), [2.0, 5.0])

    def test_rectangular_transpose(self):
        R = Matrix.from_coo([0, 1], [2, 5], [1.0, 1.0], 2, 6)
        xc = Vector.from_dense([7.0, 9.0])
        y = Vector.dense(6)
        grb.mxv(y, None, R, xc, desc=d.transpose_matrix)
        expected = np.zeros(6)
        expected[2], expected[5] = 7.0, 9.0
        np.testing.assert_array_equal(y.to_dense(), expected)

    def test_size_mismatch(self, A):
        with pytest.raises(DimensionMismatch):
            grb.mxv(Vector.dense(4), None, A, Vector.dense(3))
        with pytest.raises(DimensionMismatch):
            grb.mxv(Vector.dense(3), None, A, Vector.dense(2))

    def test_aliasing_rejected(self, A, x):
        with pytest.raises(OutputAliasing):
            grb.mxv(x, None, A, x)

    def test_row_with_no_entries_absent(self):
        A = Matrix.from_coo([0], [0], [1.0], 2, 2)  # row 1 empty
        y = Vector.dense(2, 99.0)
        grb.mxv(y, None, A, Vector.from_dense([3.0, 4.0]))
        assert y.extract_element(0) == 3.0
        assert y.extract_element(1) is None


class TestSemirings:
    @pytest.mark.parametrize("semiring", [
        grb.min_plus, grb.max_plus, grb.max_times, grb.min_times,
        grb.plus_first, grb.plus_second,
    ])
    def test_generic_matches_reference(self, A, x, semiring):
        y = Vector.dense(3)
        grb.mxv(y, None, A, x, semiring=semiring)
        expected, touched = dense_mxv(
            A, x, semiring.add.op, semiring.mul, semiring.add.identity
        )
        got = y.to_dense()
        for i in range(3):
            assert touched[i]
            assert got[i] == pytest.approx(expected[i])

    def test_lor_land_reachability(self):
        # adjacency step under the boolean semiring
        A = Matrix.from_coo([0, 1], [1, 2], [True, True], 3, 3, dtype=bool)
        frontier = Vector.from_coo([0], [True], 3, dtype=bool)
        nxt = Vector.sparse(3, dtype=bool)
        grb.mxv(nxt, None, A, frontier, semiring=grb.lor_land,
                desc=d.transpose_matrix)
        assert nxt.extract_element(1) == True  # noqa: E712
        assert nxt.extract_element(0) is None

    def test_sparse_input_skips_absent(self, A):
        xs = Vector.from_coo([0], [1.0], 3)  # only x[0] present
        y = Vector.dense(3)
        grb.mxv(y, None, A, xs)
        # row 1 has pattern {1} only; x[1] absent => no entry
        assert y.extract_element(1) is None
        assert y.extract_element(0) == 2.0
        assert y.extract_element(2) == 4.0


class TestMasks:
    def test_structural_mask_rows_only(self, A, x):
        mask = Vector.from_coo([0, 2], [True, True], 3, dtype=bool)
        y = Vector.dense(3, -7.0)
        grb.mxv(y, mask, A, x, desc=d.structural)
        got = y.to_dense()
        assert got[0] == 5.0 and got[2] == 19.0
        assert got[1] == -7.0  # untouched outside the mask

    def test_value_mask_false_not_selected(self, A, x):
        mask = Vector.from_coo([0, 1], [True, False], 3, dtype=bool)
        y = Vector.dense(3, -7.0)
        grb.mxv(y, mask, A, x)  # value mask: only index 0 selected
        got = y.to_dense()
        assert got[0] == 5.0 and got[1] == -7.0 and got[2] == -7.0

    def test_structural_mask_ignores_values(self, A, x):
        mask = Vector.from_coo([0, 1], [True, False], 3, dtype=bool)
        y = Vector.dense(3, -7.0)
        grb.mxv(y, mask, A, x, desc=d.structural)
        got = y.to_dense()
        assert got[0] == 5.0 and got[1] == 6.0  # False entry still selected

    def test_inverted_mask(self, A, x):
        mask = Vector.from_coo([0, 2], [True, True], 3, dtype=bool)
        y = Vector.dense(3, -7.0)
        grb.mxv(y, mask, A, x, desc=d.structural | d.invert_mask)
        got = y.to_dense()
        assert got[1] == 6.0
        assert got[0] == -7.0 and got[2] == -7.0

    def test_replace_clears_unmasked(self, A, x):
        mask = Vector.from_coo([0], [True], 3, dtype=bool)
        y = Vector.dense(3, -7.0)
        grb.mxv(y, mask, A, x, desc=d.structural | d.replace)
        assert y.extract_element(0) == 5.0
        assert y.extract_element(1) is None
        assert y.extract_element(2) is None

    def test_invert_without_mask_raises(self, A, x):
        with pytest.raises(InvalidValue):
            grb.mxv(Vector.dense(3), None, A, x, desc=d.invert_mask)

    def test_mask_size_mismatch(self, A, x):
        with pytest.raises(DimensionMismatch):
            grb.mxv(Vector.dense(3), Vector.sparse(4, dtype=bool), A, x)

    def test_masked_generic_semiring(self, A, x):
        mask = Vector.from_coo([2], [True], 3, dtype=bool)
        y = Vector.dense(3, 0.0)
        grb.mxv(y, mask, A, x, semiring=grb.min_plus, desc=d.structural)
        # row 2: min(4+1, 5+3) = 5
        assert y.extract_element(2) == 5.0
        assert y.extract_element(0) == 0.0


class TestAccum:
    def test_accum_plus(self, A, x):
        y = Vector.dense(3, 100.0)
        grb.mxv(y, None, A, x, accum=grb.ops.plus)
        np.testing.assert_array_equal(y.to_dense(), [105.0, 106.0, 119.0])

    def test_accum_only_new_written(self):
        A = Matrix.from_coo([0], [0], [1.0], 2, 2)
        y = Vector.from_coo([1], [50.0], 2)
        grb.mxv(y, None, A, Vector.from_dense([3.0, 0.0]), accum=grb.ops.plus)
        assert y.extract_element(0) == 3.0   # new entry
        assert y.extract_element(1) == 50.0  # old kept (no new value there)

    def test_accum_second_overwrites(self, A, x):
        y = Vector.dense(3, 100.0)
        grb.mxv(y, None, A, x, accum=grb.ops.second)
        np.testing.assert_array_equal(y.to_dense(), [5.0, 6.0, 19.0])


class TestVxm:
    def test_vxm_is_transposed_mxv(self, A, x):
        y1 = Vector.dense(3)
        y2 = Vector.dense(3)
        grb.vxm(y1, None, x, A)
        grb.mxv(y2, None, A, x, desc=d.transpose_matrix)
        assert y1 == y2

    def test_vxm_with_transpose_flips_back(self, A, x):
        y1 = Vector.dense(3)
        y2 = Vector.dense(3)
        grb.vxm(y1, None, x, A, desc=d.transpose_matrix)
        grb.mxv(y2, None, A, x)
        assert y1 == y2


class TestMxm:
    def test_plus_times_matches_scipy(self, A):
        B = Matrix.from_dense([[1.0, 2.0, 0.0], [0.0, 1.0, 0.0], [3.0, 0.0, 1.0]])
        C = Matrix.identity(3)
        grb.mxm(C, None, A, B)
        expected = (A.to_scipy() @ B.to_scipy()).toarray()
        np.testing.assert_allclose(C.to_scipy().toarray(), expected)

    def test_generic_semiring_small(self):
        A = Matrix.from_dense([[1.0, 2.0], [0.0, 3.0]])
        B = Matrix.from_dense([[4.0, 0.0], [1.0, 5.0]])
        C = Matrix.identity(2)
        grb.mxm(C, None, A, B, semiring=grb.min_plus)
        # C[0,0] = min(1+4, 2+1) = 3 ; C[0,1] = 2+5 = 7
        assert C.extract_element(0, 0) == 3.0
        assert C.extract_element(0, 1) == 7.0
        # C[1,0] = 3+1 = 4 ; C[1,1] = 3+5 = 8
        assert C.extract_element(1, 0) == 4.0
        assert C.extract_element(1, 1) == 8.0

    def test_inner_dim_mismatch(self, A):
        B = Matrix.identity(4)
        with pytest.raises(DimensionMismatch):
            grb.mxm(Matrix.identity(3), None, A, B)

    def test_permutation_sandwich(self, A):
        """P' A P — the paper's row-grouping construct (Section III-A)."""
        perm = np.array([2, 0, 1])
        n = 3
        P = Matrix.from_coo(np.arange(n), perm, np.ones(n), n, n)
        tmp = Matrix.identity(n)
        grb.mxm(tmp, None, A, P)
        out = Matrix.identity(n)
        grb.mxm(out, None, P, tmp, desc=d.transpose_matrix)
        # (P' A P)[i, j] = A[inv(i), inv(j)] where P[k, perm[k]] = 1
        inv = np.argsort(perm)
        dense = A.to_scipy().toarray()
        expected = dense[np.ix_(inv, inv)]
        np.testing.assert_allclose(out.to_scipy().toarray(), expected)


class TestEvents:
    def test_mxv_records(self, A, x):
        log = grb.backend.EventLog()
        with grb.backend.collect(log):
            grb.mxv(Vector.dense(3), None, A, x)
        assert log.count("mxv") == 1
        assert log.total("flops", op="mxv") == 2 * A.nvals

    def test_label_propagates(self, A, x):
        log = grb.backend.EventLog()
        with grb.backend.collect(log), grb.backend.labelled("spmv"):
            grb.mxv(Vector.dense(3), None, A, x)
        assert log.events[0].label == "spmv"
