"""Colouring: greedy, lattice, masks, validity."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.io import random_matrix
from repro.hpcg.coloring import (
    color_masks,
    coloring_for_problem,
    greedy_coloring,
    lattice_coloring,
    num_colors,
    validate_coloring,
)
from repro.util.errors import InvalidValue


class TestGreedy:
    def test_finds_eight_colors_on_hpcg(self, problem8):
        colors = greedy_coloring(problem8.A)
        assert num_colors(colors) == 8

    def test_valid_on_hpcg(self, problem8):
        assert validate_coloring(problem8.A, greedy_coloring(problem8.A))

    def test_equals_lattice_on_hpcg(self, problem8):
        np.testing.assert_array_equal(
            greedy_coloring(problem8.A), lattice_coloring(problem8.grid)
        )

    def test_valid_on_random_symmetric(self, rng):
        M = random_matrix(40, 40, 0.1, rng=rng)
        S = grb.Matrix.from_scipy(M.to_scipy() + M.to_scipy().T)
        colors = greedy_coloring(S)
        assert validate_coloring(S, colors)

    def test_requires_square(self):
        with pytest.raises(InvalidValue):
            greedy_coloring(grb.Matrix.from_coo([0], [1], [1.0], 1, 2))

    def test_diagonal_only_matrix_one_color(self):
        colors = greedy_coloring(grb.Matrix.identity(5))
        assert num_colors(colors) == 1

    def test_custom_order(self, problem4):
        order = np.arange(64)[::-1]
        colors = greedy_coloring(problem4.A, order=order)
        assert validate_coloring(problem4.A, colors)

    def test_contiguous_color_ids(self, problem8):
        colors = greedy_coloring(problem8.A)
        assert set(np.unique(colors)) == set(range(num_colors(colors)))


class TestLattice:
    def test_eight_colors(self):
        from repro.grid import Grid3D
        colors = lattice_coloring(Grid3D(4, 4, 4))
        assert num_colors(colors) == 8

    def test_valid(self, problem8):
        assert validate_coloring(problem8.A, lattice_coloring(problem8.grid))

    def test_color_of_origin(self):
        from repro.grid import Grid3D
        g = Grid3D(2, 2, 2)
        colors = lattice_coloring(g)
        assert colors[g.index(0, 0, 0)] == 0
        assert colors[g.index(1, 0, 0)] == 1
        assert colors[g.index(0, 1, 0)] == 2
        assert colors[g.index(0, 0, 1)] == 4

    def test_balanced_on_even_grid(self):
        from repro.grid import Grid3D
        colors = lattice_coloring(Grid3D(4, 4, 4))
        counts = np.bincount(colors)
        assert (counts == 8).all()


class TestMasks:
    def test_masks_partition_indices(self, problem8):
        colors = lattice_coloring(problem8.grid)
        masks = color_masks(colors)
        assert len(masks) == 8
        total = sum(m.nvals for m in masks)
        assert total == problem8.n
        # disjointness
        seen = np.zeros(problem8.n, dtype=int)
        for m in masks:
            idx, _ = m.to_coo()
            seen[idx] += 1
        assert (seen == 1).all()

    def test_masks_are_bool(self, problem4):
        masks = color_masks(lattice_coloring(problem4.grid))
        assert all(m.dtype == np.bool_ for m in masks)


class TestSchemeSelection:
    def test_auto_with_grid_uses_lattice(self, problem8):
        colors = coloring_for_problem(problem8.A, problem8.grid, "auto")
        np.testing.assert_array_equal(colors, lattice_coloring(problem8.grid))

    def test_auto_without_grid_uses_greedy(self, problem4):
        colors = coloring_for_problem(problem4.A, None, "auto")
        assert validate_coloring(problem4.A, colors)

    def test_explicit_greedy(self, problem4):
        colors = coloring_for_problem(problem4.A, problem4.grid, "greedy")
        assert num_colors(colors) == 8

    def test_lattice_needs_grid(self, problem4):
        with pytest.raises(InvalidValue):
            coloring_for_problem(problem4.A, None, "lattice")

    def test_unknown_scheme(self, problem4):
        with pytest.raises(InvalidValue):
            coloring_for_problem(problem4.A, problem4.grid, "rainbow")


class TestValidate:
    def test_detects_bad_coloring(self, problem4):
        colors = np.zeros(64, dtype=np.int64)  # everything same colour
        assert not validate_coloring(problem4.A, colors)
