"""Elementwise operations, reductions, dot, waxpby, ewise_lambda."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas import descriptor as d
from repro.graphblas.vector import Vector
from repro.util.errors import DimensionMismatch, InvalidValue


class TestEwiseAdd:
    def test_union_semantics(self):
        u = Vector.from_coo([0, 1], [1.0, 2.0], 4)
        v = Vector.from_coo([1, 2], [10.0, 20.0], 4)
        w = Vector.sparse(4)
        grb.ewise_add(w, None, u, v, grb.ops.plus)
        assert w.extract_element(0) == 1.0
        assert w.extract_element(1) == 12.0
        assert w.extract_element(2) == 20.0
        assert w.extract_element(3) is None

    def test_with_minus(self):
        u = Vector.from_dense([5.0, 5.0])
        v = Vector.from_dense([2.0, 3.0])
        w = Vector.dense(2)
        grb.ewise_add(w, None, u, v, grb.ops.minus)
        np.testing.assert_array_equal(w.to_dense(), [3.0, 2.0])

    def test_masked(self):
        u = Vector.from_dense([1.0, 2.0, 3.0])
        v = Vector.from_dense([1.0, 1.0, 1.0])
        mask = Vector.from_coo([1], [True], 3, dtype=bool)
        w = Vector.dense(3, 9.0)
        grb.ewise_add(w, mask, u, v, grb.ops.plus, desc=d.structural)
        np.testing.assert_array_equal(w.to_dense(), [9.0, 3.0, 9.0])

    def test_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            grb.ewise_add(Vector.dense(2), None, Vector.dense(3),
                          Vector.dense(2), grb.ops.plus)


class TestEwiseMult:
    def test_intersection_semantics(self):
        u = Vector.from_coo([0, 1], [3.0, 4.0], 3)
        v = Vector.from_coo([1, 2], [5.0, 6.0], 3)
        w = Vector.sparse(3)
        grb.ewise_mult(w, None, u, v, grb.ops.times)
        assert w.extract_element(0) is None
        assert w.extract_element(1) == 20.0
        assert w.extract_element(2) is None

    def test_dense_inputs(self):
        u = Vector.from_dense([1.0, 2.0])
        v = Vector.from_dense([3.0, 4.0])
        w = Vector.dense(2)
        grb.ewise_mult(w, None, u, v, grb.ops.times)
        np.testing.assert_array_equal(w.to_dense(), [3.0, 8.0])


class TestApply:
    def test_unary(self):
        u = Vector.from_dense([1.0, 4.0, 9.0])
        w = Vector.dense(3)
        grb.apply(w, None, grb.ops.sqrt, u)
        np.testing.assert_array_equal(w.to_dense(), [1.0, 2.0, 3.0])

    def test_preserves_pattern(self):
        u = Vector.from_coo([1], [-5.0], 3)
        w = Vector.sparse(3)
        grb.apply(w, None, grb.ops.abs_, u)
        assert w.extract_element(1) == 5.0
        assert w.nvals == 1

    def test_masked(self):
        u = Vector.from_dense([-1.0, -2.0, -3.0])
        mask = Vector.from_coo([0, 2], [True, True], 3, dtype=bool)
        w = Vector.dense(3, 0.0)
        grb.apply(w, mask, grb.ops.ainv, u, desc=d.structural)
        np.testing.assert_array_equal(w.to_dense(), [1.0, 0.0, 3.0])


class TestAssignExtract:
    def test_assign_scalar_all(self):
        w = Vector.sparse(3)
        grb.assign(w, None, 5.0)
        np.testing.assert_array_equal(w.to_dense(), [5.0] * 3)

    def test_assign_scalar_masked(self):
        mask = Vector.from_coo([1], [True], 3, dtype=bool)
        w = Vector.dense(3, 1.0)
        grb.assign(w, mask, 9.0, desc=d.structural)
        np.testing.assert_array_equal(w.to_dense(), [1.0, 9.0, 1.0])

    def test_assign_vector(self):
        src = Vector.from_dense([7.0, 8.0, 9.0])
        w = Vector.dense(3)
        grb.assign(w, None, src)
        assert w == src

    def test_assign_vector_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            grb.assign(Vector.dense(3), None, Vector.dense(2))

    def test_extract_subvector(self):
        u = Vector.from_dense([10.0, 11.0, 12.0, 13.0])
        w = Vector.dense(2)
        grb.extract(w, None, u, [3, 1])
        np.testing.assert_array_equal(w.to_dense(), [13.0, 11.0])

    def test_extract_pattern_respected(self):
        u = Vector.from_coo([0], [1.0], 3)
        w = Vector.dense(2, 5.0)
        grb.extract(w, None, u, [0, 2])
        assert w.extract_element(0) == 1.0
        assert w.extract_element(1) is None

    def test_extract_index_out_of_range(self):
        with pytest.raises(InvalidValue):
            grb.extract(Vector.dense(1), None, Vector.dense(2), [5])

    def test_extract_count_mismatch(self):
        with pytest.raises(DimensionMismatch):
            grb.extract(Vector.dense(3), None, Vector.dense(5), [0, 1])


class TestReduceDot:
    def test_reduce_plus(self):
        u = Vector.from_dense([1.0, 2.0, 3.0])
        assert grb.reduce(u, grb.plus_monoid) == 6.0

    def test_reduce_skips_absent(self):
        u = Vector.from_coo([0, 2], [1.0, 3.0], 4)
        assert grb.reduce(u, grb.plus_monoid) == 4.0

    def test_reduce_empty_is_identity(self):
        assert grb.reduce(Vector.sparse(5), grb.plus_monoid) == 0
        assert grb.reduce(Vector.sparse(5), grb.min_monoid) == np.inf

    def test_reduce_matrix(self):
        A = grb.Matrix.from_dense([[1.0, 2.0], [3.0, 0.0]])
        assert grb.reduce_matrix(A, grb.plus_monoid) == 6.0

    def test_dot_dense(self):
        u = Vector.from_dense([1.0, 2.0])
        v = Vector.from_dense([3.0, 4.0])
        assert grb.dot(u, v) == 11.0

    def test_dot_intersection_only(self):
        u = Vector.from_coo([0, 1], [1.0, 2.0], 3)
        v = Vector.from_coo([1, 2], [10.0, 5.0], 3)
        assert grb.dot(u, v) == 20.0

    def test_dot_generic_semiring(self):
        u = Vector.from_dense([3.0, 1.0])
        v = Vector.from_dense([2.0, 5.0])
        # min_plus: min(3+2, 1+5) = 5
        assert grb.dot(u, v, semiring=grb.min_plus) == 5.0

    def test_dot_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            grb.dot(Vector.dense(2), Vector.dense(3))

    def test_norm2(self):
        u = Vector.from_dense([3.0, 4.0])
        assert grb.norm2(u) == 5.0


class TestWaxpby:
    def test_basic(self):
        x = Vector.from_dense([1.0, 2.0])
        y = Vector.from_dense([10.0, 20.0])
        w = Vector.dense(2)
        grb.waxpby(w, 2.0, x, 0.5, y)
        np.testing.assert_array_equal(w.to_dense(), [7.0, 14.0])

    def test_alias_x(self):
        x = Vector.from_dense([1.0, 2.0])
        y = Vector.from_dense([10.0, 20.0])
        grb.waxpby(x, 1.0, x, 1.0, y)
        np.testing.assert_array_equal(x.to_dense(), [11.0, 22.0])

    def test_alias_y(self):
        x = Vector.from_dense([1.0, 2.0])
        y = Vector.from_dense([10.0, 20.0])
        grb.waxpby(y, 2.0, x, -1.0, y)
        np.testing.assert_array_equal(y.to_dense(), [-8.0, -16.0])

    def test_sparse_union(self):
        x = Vector.from_coo([0], [2.0], 3)
        y = Vector.from_coo([2], [3.0], 3)
        w = Vector.sparse(3)
        grb.waxpby(w, 10.0, x, 100.0, y)
        assert w.extract_element(0) == 20.0
        assert w.extract_element(1) is None
        assert w.extract_element(2) == 300.0

    def test_matches_numpy(self, rng):
        xv = rng.standard_normal(50)
        yv = rng.standard_normal(50)
        w = Vector.dense(50)
        grb.waxpby(w, -0.7, Vector.from_dense(xv), 1.3, Vector.from_dense(yv))
        np.testing.assert_allclose(w.to_dense(), -0.7 * xv + 1.3 * yv)


class TestEwiseLambda:
    def test_masked_update(self):
        x = Vector.from_dense([1.0, 2.0, 3.0])
        mask = Vector.from_coo([0, 2], [True, True], 3, dtype=bool)

        def double(idx, xv):
            xv[idx] *= 2

        grb.ewise_lambda(double, mask, x)
        np.testing.assert_array_equal(x.to_dense(), [2.0, 2.0, 6.0])

    def test_multiple_vectors(self):
        x = Vector.from_dense([1.0, 1.0])
        y = Vector.from_dense([3.0, 4.0])

        def add_in(idx, xv, yv):
            xv[idx] += yv[idx]

        grb.ewise_lambda(add_in, None, x, y)
        np.testing.assert_array_equal(x.to_dense(), [4.0, 5.0])

    def test_requires_presence(self):
        x = Vector.from_coo([0], [1.0], 3)
        mask = Vector.from_coo([1], [True], 3, dtype=bool)
        with pytest.raises(InvalidValue):
            grb.ewise_lambda(lambda idx, xv: None, mask, x)

    def test_no_vectors_rejected(self):
        with pytest.raises(InvalidValue):
            grb.ewise_lambda(lambda idx: None, None)

    def test_version_bumped(self):
        x = Vector.from_dense([1.0])
        v0 = x.version
        grb.ewise_lambda(lambda idx, xv: None, None, x)
        assert x.version > v0

    def test_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            grb.ewise_lambda(lambda idx, a, b: None, None,
                             Vector.dense(2), Vector.dense(3))


class TestApplyBind:
    def test_bind_first_minus(self):
        u = Vector.from_dense([0.25, 0.75])
        w = Vector.dense(2)
        grb.apply_bind_first(w, None, grb.ops.minus, 1.0, u)
        np.testing.assert_array_equal(w.to_dense(), [0.75, 0.25])

    def test_bind_second_times(self):
        u = Vector.from_dense([2.0, 4.0])
        w = Vector.dense(2)
        grb.apply_bind_second(w, None, grb.ops.times, u, 0.5)
        np.testing.assert_array_equal(w.to_dense(), [1.0, 2.0])

    def test_bind_second_pow(self):
        u = Vector.from_dense([2.0, 3.0])
        w = Vector.dense(2)
        grb.apply_bind_second(w, None, grb.ops.pow_, u, 2)
        np.testing.assert_array_equal(w.to_dense(), [4.0, 9.0])

    def test_bind_preserves_pattern(self):
        u = Vector.from_coo([1], [5.0], 3)
        w = Vector.sparse(3)
        grb.apply_bind_first(w, None, grb.ops.plus, 10.0, u)
        assert w.nvals == 1 and w.extract_element(1) == 15.0

    def test_bind_masked_with_accum(self):
        u = Vector.from_dense([1.0, 2.0])
        mask = Vector.from_coo([1], [True], 2, dtype=bool)
        w = Vector.from_dense([100.0, 100.0])
        grb.apply_bind_second(w, mask, grb.ops.times, u, 3.0,
                              accum=grb.ops.plus, desc=d.structural)
        np.testing.assert_array_equal(w.to_dense(), [100.0, 106.0])

    def test_bind_first_order_matters(self):
        u = Vector.from_dense([10.0])
        w1 = Vector.dense(1)
        w2 = Vector.dense(1)
        grb.apply_bind_first(w1, None, grb.ops.div, 100.0, u)   # 100/10
        grb.apply_bind_second(w2, None, grb.ops.div, u, 100.0)  # 10/100
        assert w1.extract_element(0) == 10.0
        assert w2.extract_element(0) == 0.1

    def test_bind_size_check(self):
        with pytest.raises(DimensionMismatch):
            grb.apply_bind_first(Vector.dense(2), None, grb.ops.plus, 1.0,
                                 Vector.dense(3))
