"""Machine calibration on the current host."""

import pytest

from repro.hpcg.problem import generate_problem
from repro.perf.calibrate import (
    calibrate,
    measure_triad_bandwidth,
    this_machine,
)
from repro.perf.model import ALP_PROFILE, Placement, ScalingModel


class TestTriad:
    def test_positive_bandwidth(self):
        bw = measure_triad_bandwidth(size=500_000, repeats=2)
        assert bw > 1e8  # any machine manages 100 MB/s

    def test_repeatable_order_of_magnitude(self):
        a = measure_triad_bandwidth(size=500_000, repeats=2)
        b = measure_triad_bandwidth(size=500_000, repeats=2)
        assert 0.2 < a / b < 5.0


class TestCalibrate:
    @pytest.fixture(scope="class")
    def result(self):
        return calibrate(generate_problem(8), mg_levels=3, iterations=2)

    def test_fields_positive(self, result):
        assert result.triad_bandwidth > 0
        assert result.kernel_bandwidth > 0
        assert result.kernel_seconds > 0
        assert result.stream_bytes > 0

    def test_kernels_below_triad(self, result):
        """Sparse kernels (with Python overhead) cannot beat the dense
        triad by much; efficiency stays in a sane band."""
        assert result.efficiency < 2.0

    def test_this_machine_spec_usable(self):
        spec = this_machine()
        assert spec.physical_cores >= 1
        model = ScalingModel(spec, ALP_PROFILE)
        t = model.time_for_bytes(1e9, Placement(1, 1))
        assert t > 0

    def test_this_machine_reuses_calibration(self, result):
        """A caller holding a CalibrationResult must not pay for a
        second triad run: the measured figure is reused verbatim."""
        spec = this_machine(calibration=result)
        assert spec.attained_bandwidth == result.triad_bandwidth

    def test_this_machine_accepts_raw_bandwidth(self):
        spec = this_machine(bandwidth=123.0e9)
        assert spec.attained_bandwidth == 123.0e9
        # bandwidth wins over calibration when both are given
        spec = this_machine(bandwidth=7.0e9, calibration=None)
        assert spec.attained_bandwidth == 7.0e9
