"""Simulated distributed runs: correctness and the Table-I behaviours."""

import numpy as np
import pytest

from repro.dist import HybridALPRun, RefDistRun, factor3
from repro.dist.hybrid import _allgather_matrix
from repro.dist.partition import BlockCyclic1D
from repro.hpcg.driver import run_hpcg
from repro.hpcg.problem import generate_problem
from repro.util.errors import InvalidValue


@pytest.fixture(scope="module")
def dist_problem():
    # p=4 -> (1,2,2): global grid 8x16x16, local 8^3 per node
    return generate_problem(8, 16, 16)


class TestHybridALP:
    def test_residuals_match_serial(self, dist_problem):
        run = HybridALPRun(dist_problem, nprocs=4, mg_levels=3)
        res = run.run_cg(max_iters=5)
        serial = run_hpcg(nx=0, problem=dist_problem, max_iters=5,
                          mg_levels=3, validate_symmetry=False)
        np.testing.assert_allclose(res.residuals, serial.cg.residuals,
                                   rtol=1e-12)

    def test_allgather_volume_formula(self, dist_problem):
        """Per-mxv traffic is exactly n/p values to each of p-1 peers."""
        run = HybridALPRun(dist_problem, nprocs=4, mg_levels=1)
        res = run.run_cg(max_iters=1, use_mg=False)
        n = dist_problem.n
        expected = (n // 4) * 8 * 3
        assert res.tracker.max_send_per_node() == expected

    def test_allgather_matrix_zero_diag(self):
        part = BlockCyclic1D(100, 4, block=8)
        m = _allgather_matrix(part)
        assert (np.diag(m) == 0).all()
        assert m.sum() == sum(part.local_size(k) for k in range(4)) * 8 * 3

    def test_comm_grows_linearly_with_p(self):
        """The Table-I ALP column: per-node send ~ n (p-1)/p."""
        sends = {}
        for p in (2, 4):
            px, py, pz = factor3(p)
            prob = generate_problem(8 * px, 8 * py, 8 * pz)
            run = HybridALPRun(prob, nprocs=p, mg_levels=1)
            res = run.run_cg(max_iters=1, use_mg=False)
            sends[p] = res.tracker.max_send_per_node() / prob.n
        # n(p-1)/p /n = (p-1)/p: 0.5 at p=2, 0.75 at p=4
        assert sends[2] == pytest.approx(0.5 * 8, rel=0.05)
        assert sends[4] == pytest.approx(0.75 * 8, rel=0.05)

    def test_every_mxv_synchronises(self, dist_problem):
        run = HybridALPRun(dist_problem, nprocs=2, mg_levels=2)
        res = run.run_cg(max_iters=1)
        # one sync per colour per sweep: the fine level runs pre+post
        # symmetric passes (2 x fwd+bwd = 4 sweeps), the coarsest level
        # only its single pre-smoothing pass (2 sweeps): (4+2) x 8 colours.
        rbgs_syncs = sum(1 for s in res.tracker.supersteps
                         if s.label == "rbgs_mxv")
        assert rbgs_syncs == (4 + 2) * 8

    def test_single_node_no_comm(self, dist_problem):
        run = HybridALPRun(dist_problem, nprocs=1, mg_levels=2)
        res = run.run_cg(max_iters=2)
        assert res.comm_bytes == 0

    def test_invalid_nprocs(self, dist_problem):
        with pytest.raises(InvalidValue):
            HybridALPRun(dist_problem, nprocs=0)


class TestRefDist:
    def test_residuals_match_serial(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=3)
        res = run.run_cg(max_iters=5)
        serial = run_hpcg(nx=0, problem=dist_problem, max_iters=5,
                          mg_levels=3, validate_symmetry=False)
        np.testing.assert_allclose(res.residuals, serial.cg.residuals,
                                   rtol=1e-12)

    def test_halo_is_surface_not_volume(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=1)
        level = run.levels[0]
        per_node_send = np.zeros(4, dtype=np.int64)
        for (src, _dst), nbytes in level.spmv_halo.items():
            per_node_send[src] += nbytes
        n_local = dist_problem.n // 4
        # halo ~ O(local^{2/3}) while volume is local; require well below
        assert per_node_send.max() // 8 < n_local / 2

    def test_color_halos_partition_full_halo(self, dist_problem):
        """Per-colour halos sum to the full spmv halo (same points, each
        carrying exactly one colour)."""
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=1)
        level = run.levels[0]
        total_color = {}
        for per in level.color_halo:
            for pair, nbytes in per.items():
                total_color[pair] = total_color.get(pair, 0) + nbytes
        assert total_color == level.spmv_halo

    def test_restriction_is_local(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=3)
        res = run.run_cg(max_iters=2)
        assert res.tracker.label_bytes.get("restrict", 0) == 0
        assert res.tracker.label_bytes.get("refine", 0) == 0

    def test_comm_far_below_alp(self, dist_problem):
        ref = RefDistRun(dist_problem, nprocs=4, mg_levels=3).run_cg(max_iters=3)
        alp = HybridALPRun(dist_problem, nprocs=4, mg_levels=3).run_cg(max_iters=3)
        assert ref.comm_bytes * 10 < alp.comm_bytes

    def test_explicit_process_grid(self):
        prob = generate_problem(8, 8, 16)
        run = RefDistRun(prob, nprocs=2, mg_levels=2, process_grid=(1, 1, 2))
        res = run.run_cg(max_iters=2)
        assert res.nprocs == 2

    def test_summary_and_breakdown(self, dist_problem):
        res = RefDistRun(dist_problem, nprocs=4, mg_levels=3).run_cg(max_iters=2)
        assert "ref-3d" in res.summary()
        rows = res.mg_level_breakdown()
        assert len(rows) == 3
        assert all(0 <= r["rbgs"] <= 1 for r in rows)


class TestBfsPartitionBackend:
    """bfs_partition (solution iv) as a first-class RefDistRun owner
    source: full CG+MG on structure-derived owners."""

    def test_residuals_match_serial(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         partition="bfs")
        res = run.run_cg(max_iters=5)
        serial = run_hpcg(nx=0, problem=dist_problem, max_iters=5,
                          mg_levels=3, validate_symmetry=False)
        np.testing.assert_allclose(res.residuals, serial.cg.residuals,
                                   rtol=1e-12)

    def test_halo_volume_close_to_geometric(self, dist_problem):
        """The black-box BFS partition recovers most of the geometric
        locality: its halo is the same order as the 3D boxes' surface
        (well below the locality-free cyclic distribution's volume)."""
        geo = RefDistRun(dist_problem, nprocs=4, mg_levels=1)
        bfs = RefDistRun(dist_problem, nprocs=4, mg_levels=1,
                         partition="bfs")
        geo_halo = sum(geo.levels[0].spmv_halo.values())
        bfs_halo = sum(bfs.levels[0].spmv_halo.values())
        assert geo_halo < bfs_halo <= 3 * geo_halo
        # a locality-free ownership moves ~the whole volume instead
        from repro.dist.partition import halo_for_owners
        A = dist_problem.A.to_scipy()
        cyc = BlockCyclic1D(dist_problem.n, 4).owner(
            np.arange(dist_problem.n))
        cyc_halo = sum(idxs.size * 8 for idxs in halo_for_owners(
            A.indptr, A.indices, cyc, 4).values())
        assert bfs_halo * 3 < cyc_halo

    def test_bfs_restriction_crosses_some_nodes(self, dist_problem):
        """BFS levels are partitioned independently, so a few injection
        points cross nodes — priced, unlike the geometric free copy."""
        res = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         partition="bfs").run_cg(max_iters=2)
        moved = (res.tracker.label_bytes.get("restrict", 0)
                 + res.tracker.label_bytes.get("refine", 0))
        assert moved > 0
        # ... but far fewer than the whole coarse vector per transfer
        coarse_n = res.tracker.label_bytes.get("restrict", 0) / 8
        assert coarse_n < dist_problem.n // 8

    def test_unknown_partition_rejected(self, dist_problem):
        with pytest.raises(InvalidValue):
            RefDistRun(dist_problem, nprocs=4, partition="metis")


class TestAgglomeration:
    """Coarse-grid agglomeration: gather tiny levels onto one node."""

    def test_numerics_unchanged(self, dist_problem):
        base = RefDistRun(dist_problem, nprocs=4, mg_levels=3)
        agg = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         agglomerate_below=200)
        res_b = base.run_cg(max_iters=4)
        res_a = agg.run_cg(max_iters=4)
        np.testing.assert_array_equal(res_b.residuals, res_a.residuals)

    def test_fewer_supersteps(self, dist_problem):
        base = RefDistRun(dist_problem, nprocs=4, mg_levels=3)
        agg = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         agglomerate_below=200)
        assert agg.levels[2].agglomerated and not agg.levels[0].agglomerated
        res_b = base.run_cg(max_iters=3)
        res_a = agg.run_cg(max_iters=3)
        assert res_a.syncs < res_b.syncs

    def test_latency_bound_grids_win(self, dist_problem):
        """On a latency-dominated fabric, dodging the tiny coarse-level
        supersteps beats the lost parallelism (the ROADMAP tradeoff)."""
        from repro.dist import BSPMachine
        slow_sync = BSPMachine("slow-sync", mem_bandwidth=192.0e9,
                               net_bandwidth=12.5e9, latency=50e-6)
        base = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                          machine=slow_sync).run_cg(max_iters=3)
        agg = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         machine=slow_sync,
                         agglomerate_below=200).run_cg(max_iters=3)
        assert agg.modelled_seconds < base.modelled_seconds

    def test_gather_scatter_priced(self, dist_problem):
        res = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         agglomerate_below=200).run_cg(max_iters=2)
        assert res.tracker.label_bytes.get("agg_gather", 0) > 0
        assert res.tracker.label_bytes.get("agg_scatter", 0) > 0

    def test_agglomerated_level_never_syncs(self, dist_problem):
        res = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                         agglomerate_below=200).run_cg(max_iters=2)
        # the coarse smoother still costs local time but zero wire time
        assert res.timers.total("mg/L2/rbgs") > 0
        assert res.comm_timers.total("full/mg/L2/rbgs") == 0
        assert res.comm_timers.total("full/mg/L1/rbgs") > 0

    def test_works_on_alp_backend(self, dist_problem):
        base = HybridALPRun(dist_problem, nprocs=4, mg_levels=3)
        agg = HybridALPRun(dist_problem, nprocs=4, mg_levels=3,
                           agglomerate_below=200)
        res_b = base.run_cg(max_iters=2)
        res_a = agg.run_cg(max_iters=2)
        np.testing.assert_array_equal(res_b.residuals, res_a.residuals)
        assert res_a.comm_bytes < res_b.comm_bytes

    def test_negative_threshold_rejected(self, dist_problem):
        with pytest.raises(InvalidValue):
            RefDistRun(dist_problem, nprocs=4, agglomerate_below=-1)
