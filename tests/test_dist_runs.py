"""Simulated distributed runs: correctness and the Table-I behaviours."""

import numpy as np
import pytest

from repro.dist import HybridALPRun, RefDistRun, factor3
from repro.dist.hybrid import _allgather_matrix
from repro.dist.partition import BlockCyclic1D
from repro.hpcg.driver import run_hpcg
from repro.hpcg.problem import generate_problem
from repro.util.errors import InvalidValue


@pytest.fixture(scope="module")
def dist_problem():
    # p=4 -> (1,2,2): global grid 8x16x16, local 8^3 per node
    return generate_problem(8, 16, 16)


class TestHybridALP:
    def test_residuals_match_serial(self, dist_problem):
        run = HybridALPRun(dist_problem, nprocs=4, mg_levels=3)
        res = run.run_cg(max_iters=5)
        serial = run_hpcg(nx=0, problem=dist_problem, max_iters=5,
                          mg_levels=3, validate_symmetry=False)
        np.testing.assert_allclose(res.residuals, serial.cg.residuals,
                                   rtol=1e-12)

    def test_allgather_volume_formula(self, dist_problem):
        """Per-mxv traffic is exactly n/p values to each of p-1 peers."""
        run = HybridALPRun(dist_problem, nprocs=4, mg_levels=1)
        res = run.run_cg(max_iters=1, use_mg=False)
        n = dist_problem.n
        expected = (n // 4) * 8 * 3
        assert res.tracker.max_send_per_node() == expected

    def test_allgather_matrix_zero_diag(self):
        part = BlockCyclic1D(100, 4, block=8)
        m = _allgather_matrix(part)
        assert (np.diag(m) == 0).all()
        assert m.sum() == sum(part.local_size(k) for k in range(4)) * 8 * 3

    def test_comm_grows_linearly_with_p(self):
        """The Table-I ALP column: per-node send ~ n (p-1)/p."""
        sends = {}
        for p in (2, 4):
            px, py, pz = factor3(p)
            prob = generate_problem(8 * px, 8 * py, 8 * pz)
            run = HybridALPRun(prob, nprocs=p, mg_levels=1)
            res = run.run_cg(max_iters=1, use_mg=False)
            sends[p] = res.tracker.max_send_per_node() / prob.n
        # n(p-1)/p /n = (p-1)/p: 0.5 at p=2, 0.75 at p=4
        assert sends[2] == pytest.approx(0.5 * 8, rel=0.05)
        assert sends[4] == pytest.approx(0.75 * 8, rel=0.05)

    def test_every_mxv_synchronises(self, dist_problem):
        run = HybridALPRun(dist_problem, nprocs=2, mg_levels=2)
        res = run.run_cg(max_iters=1)
        # one sync per colour per sweep: the fine level runs pre+post
        # symmetric passes (2 x fwd+bwd = 4 sweeps), the coarsest level
        # only its single pre-smoothing pass (2 sweeps): (4+2) x 8 colours.
        rbgs_syncs = sum(1 for s in res.tracker.supersteps
                         if s.label == "rbgs_mxv")
        assert rbgs_syncs == (4 + 2) * 8

    def test_single_node_no_comm(self, dist_problem):
        run = HybridALPRun(dist_problem, nprocs=1, mg_levels=2)
        res = run.run_cg(max_iters=2)
        assert res.comm_bytes == 0

    def test_invalid_nprocs(self, dist_problem):
        with pytest.raises(InvalidValue):
            HybridALPRun(dist_problem, nprocs=0)


class TestRefDist:
    def test_residuals_match_serial(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=3)
        res = run.run_cg(max_iters=5)
        serial = run_hpcg(nx=0, problem=dist_problem, max_iters=5,
                          mg_levels=3, validate_symmetry=False)
        np.testing.assert_allclose(res.residuals, serial.cg.residuals,
                                   rtol=1e-12)

    def test_halo_is_surface_not_volume(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=1)
        level = run.levels[0]
        per_node_send = np.zeros(4, dtype=np.int64)
        for (src, _dst), nbytes in level.spmv_halo.items():
            per_node_send[src] += nbytes
        n_local = dist_problem.n // 4
        # halo ~ O(local^{2/3}) while volume is local; require well below
        assert per_node_send.max() // 8 < n_local / 2

    def test_color_halos_partition_full_halo(self, dist_problem):
        """Per-colour halos sum to the full spmv halo (same points, each
        carrying exactly one colour)."""
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=1)
        level = run.levels[0]
        total_color = {}
        for per in level.color_halo:
            for pair, nbytes in per.items():
                total_color[pair] = total_color.get(pair, 0) + nbytes
        assert total_color == level.spmv_halo

    def test_restriction_is_local(self, dist_problem):
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=3)
        res = run.run_cg(max_iters=2)
        assert res.tracker.label_bytes.get("restrict", 0) == 0
        assert res.tracker.label_bytes.get("refine", 0) == 0

    def test_comm_far_below_alp(self, dist_problem):
        ref = RefDistRun(dist_problem, nprocs=4, mg_levels=3).run_cg(max_iters=3)
        alp = HybridALPRun(dist_problem, nprocs=4, mg_levels=3).run_cg(max_iters=3)
        assert ref.comm_bytes * 10 < alp.comm_bytes

    def test_explicit_process_grid(self):
        prob = generate_problem(8, 8, 16)
        run = RefDistRun(prob, nprocs=2, mg_levels=2, process_grid=(1, 1, 2))
        res = run.run_cg(max_iters=2)
        assert res.nprocs == 2

    def test_summary_and_breakdown(self, dist_problem):
        res = RefDistRun(dist_problem, nprocs=4, mg_levels=3).run_cg(max_iters=2)
        assert "ref-3d" in res.summary()
        rows = res.mg_level_breakdown()
        assert len(rows) == 3
        assert all(0 <= r["rbgs"] <= 1 for r in rows)
