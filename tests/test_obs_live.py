"""repro.obs live telemetry: streaming trace sink, HTTP endpoint, push
transports, sampling profiler — and the crash-safety + zero-numeric-
impact guarantees the live runtime must keep."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro import obs
from repro.hpcg.driver import main as driver_main, run_hpcg
from repro.obs import flame, live, stream
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SamplingProfiler
from repro.obs.stream import StreamingSink
from repro.obs.trace import Tracer
from repro.util.errors import InvalidValue


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Each test starts and ends with no active context (so a suite-wide
    ``REPRO_TRACE=1`` env context cannot leak state between tests)."""
    obs.reset()
    yield
    obs.reset()


def _get(url: str, timeout: float = 5.0):
    """GET ``url``; returns (status, content-type, body text)."""
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode("utf-8")


# ---------------------------------------------------------------------------
# streaming trace sink
# ---------------------------------------------------------------------------

class TestStreamingSink:
    def test_header_spans_footer_roundtrip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        with StreamingSink(str(path), run_id="abc123", tracer=tracer):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        header, spans, footer = stream.read_stream(str(path))
        assert header["kind"] == stream.STREAM_KIND
        assert header["schema_version"] == stream.STREAM_SCHEMA_VERSION
        assert header["run_id"] == "abc123"
        # completion order, children before parents — same as in memory
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert footer is not None
        assert footer["spans"] == 2 and footer["dropped"] == 0

    def test_spans_land_on_disk_before_close(self, tmp_path):
        """The crash-safety property: a top-level span's close flushes,
        so the file holds it while the sink (and run) are still live."""
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        sink = StreamingSink(str(path), tracer=tracer)
        try:
            with tracer.span("phase1"):
                pass
            _, spans, footer = stream.read_stream(str(path))
            assert [s["name"] for s in spans] == ["phase1"]
            assert footer is None      # still open: no end marker yet
        finally:
            sink.close()

    def test_flush_every_inside_enclosing_span(self, tmp_path):
        """Inner spans flush every ``flush_every`` even while their
        enclosing top-level span stays open (a long solve's shape)."""
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        sink = StreamingSink(str(path), tracer=tracer, flush_every=3)
        try:
            with tracer.span("solve"):
                for i in range(7):
                    with tracer.span(f"iter{i}"):
                        pass
                _, spans, _ = stream.read_stream(str(path))
                # 7 written, flushes after 3 and 6; the 7th may sit in
                # the userspace buffer
                assert len(spans) >= 6
        finally:
            sink.close()

    def test_torn_tail_tolerated_midfile_corruption_not(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        with StreamingSink(str(path), tracer=tracer):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        text = path.read_text()
        # a hard kill tears the final line: reader shrugs it off
        torn = text[:-25]
        header, spans, footer = stream.parse_stream_text(torn)
        assert footer is None
        assert len(spans) >= 2
        warnings = stream.validate_stream_text(torn)
        assert any("partial trace" in w for w in warnings)
        # a mangled line anywhere else is corruption, not crash damage
        lines = text.splitlines()
        lines[1] = lines[1][:10]
        with pytest.raises(InvalidValue):
            stream.parse_stream_text("\n".join(lines))

    def test_footer_span_count_mismatch_is_corruption(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        with StreamingSink(str(path), tracer=tracer):
            with tracer.span("x"):
                pass
        doctored = path.read_text().replace('"spans": 1', '"spans": 9')
        with pytest.raises(InvalidValue):
            stream.validate_stream_text(doctored)

    def test_dropped_spans_still_streamed(self, tmp_path):
        """The stream is the unbounded record: spans the bounded
        in-memory store drops past max_spans still reach the file."""
        path = tmp_path / "stream.jsonl"
        tracer = Tracer(max_spans=2)
        with StreamingSink(str(path), tracer=tracer):
            for i in range(5):
                with tracer.span(f"s{i}"):
                    pass
        assert len(tracer.spans) == 2 and tracer.dropped == 3
        _, spans, footer = stream.read_stream(str(path))
        assert len(spans) == 5
        assert footer["dropped"] == 3
        warnings = stream.validate_stream_text(path.read_text())
        assert any("max_spans" in w for w in warnings)

    def test_close_idempotent_and_detaches(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        sink = StreamingSink(str(path), tracer=tracer)
        sink.close()
        sink.close()
        with tracer.span("after"):      # closed sink: no write, no error
            pass
        _, spans, footer = stream.read_stream(str(path))
        assert spans == [] and footer["spans"] == 0
        assert tracer.sink_errors == 0

    def test_sink_exceptions_counted_not_raised(self):
        def bad_sink(record):
            raise OSError("disk full")

        tracer = Tracer()
        tracer.add_sink(bad_sink)
        with tracer.span("survives"):
            pass
        assert [s.name for s in tracer.spans] == ["survives"]
        assert tracer.sink_errors == 1

    def test_consumers_accept_stream_files(self, tmp_path):
        """load_spans / folded_stacks / validate work on JSONL streams,
        so obs diff/flame/top need no new code paths."""
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        sink = StreamingSink(str(path), tracer=tracer)
        with tracer.span("root"):
            with tracer.span("leaf"):
                time.sleep(0.002)
        # leave the sink open: the partial (footer-less) file must work
        spans = obs.analyze.load_spans(str(path))
        assert {s["name"] for s in spans} == {"root", "leaf"}
        stacks = flame.folded_stacks(spans)
        assert any(key.startswith("root;leaf") for key in stacks)
        kind, warnings = obs.export.validate_file_report(str(path))
        assert kind == "trace-stream"
        assert any("partial trace" in w for w in warnings)
        sink.close()

    def test_validate_cli_warns_on_partial_stream(self, tmp_path, capsys):
        path = tmp_path / "stream.jsonl"
        tracer = Tracer()
        sink = StreamingSink(str(path), tracer=tracer)
        with tracer.span("x"):
            pass
        assert obs_main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok: trace-stream" in out
        assert "partial trace" in out
        sink.close()

    def test_validate_cli_warns_on_truncated_trace(self, tmp_path, capsys):
        """Satellite: max_spans truncation surfaces as a warning on the
        one-shot trace artifact too — visible, never fatal."""
        with obs.run(max_spans=2) as ctx:
            for i in range(4):
                with obs.span(f"s{i}"):
                    pass
        trace = tmp_path / "trace.json"
        obs.export.write_trace(str(trace), ctx)
        assert obs_main(["validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "truncated by max_spans" in out


# ---------------------------------------------------------------------------
# crash-safe artifact flush
# ---------------------------------------------------------------------------

class TestCrashFlush:
    def test_run_flushes_artifacts_on_exception(self, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        manifest = tmp_path / "manifest.json"
        with pytest.raises(RuntimeError, match="boom"):
            with obs.run(flush_trace=str(trace),
                         flush_metrics=str(metrics),
                         flush_manifest=str(manifest)) as ctx:
                ctx.metrics.counter("work_total", "work").inc(3)
                with obs.span("phase/one"):
                    pass
                with obs.span("phase/two"):
                    raise RuntimeError("boom")
        # everything recorded up to the failure is on disk and valid
        assert obs.export.validate_file(str(trace)) == "trace"
        assert obs.export.validate_file(str(metrics)) == "metrics"
        assert obs.export.validate_file(str(manifest)) == "manifest"
        doc = json.loads(trace.read_text())
        names = {s["name"] for s in doc["otherData"]["spans"]}
        # phase/two closed during unwinding, so it is in the flush too
        assert names == {"phase/one", "phase/two"}
        mdoc = json.loads(manifest.read_text())
        assert mdoc["config"]["flush_reason"] == "exception"

    def test_no_flush_on_clean_exit(self, tmp_path):
        trace = tmp_path / "trace.json"
        with obs.run(flush_trace=str(trace)):
            with obs.span("fine"):
                pass
        # clean exits write artifacts explicitly (driver does); the
        # crash path must not double-write behind the caller's back
        assert not trace.exists()

    def test_flush_never_masks_the_exception(self, tmp_path):
        # an unwritable flush path: the original error still propagates
        with pytest.raises(RuntimeError, match="original"):
            with obs.run(flush_trace=str(tmp_path / "no" / "dir" / "t.json")):
                raise RuntimeError("original")

    def test_driver_crash_leaves_valid_artifacts(self, tmp_path,
                                                 monkeypatch):
        """Satellite (a) end to end: a solve that raises mid-run still
        leaves validating artifacts holding the pre-crash record."""
        import repro.hpcg.driver as driver_mod

        def exploding_pcg(*a, **k):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(driver_mod, "pcg", exploding_pcg)
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        manifest = tmp_path / "manifest.json"
        stream_path = tmp_path / "stream.jsonl"
        with pytest.raises(RuntimeError, match="solver exploded"):
            driver_main([
                "--nx", "8", "--iters", "3", "--mg-levels", "2",
                "--trace-json", str(trace),
                "--metrics-json", str(metrics),
                "--manifest-json", str(manifest),
                "--trace-stream", str(stream_path),
            ])
        for path, kind in ((trace, "trace"), (metrics, "metrics"),
                           (manifest, "manifest")):
            assert obs.export.validate_file(str(path), kind) == kind
        doc = json.loads(trace.read_text())
        names = {s["name"] for s in doc["otherData"]["spans"]}
        assert "hpcg/setup" in names and "hpcg/validate" in names
        # the ExitStack closed the sink during unwinding: clean footer
        _, spans, footer = stream.read_stream(str(stream_path))
        assert footer is not None
        assert {"hpcg/setup", "hpcg/validate"} <= {s["name"] for s in spans}


# ---------------------------------------------------------------------------
# the live HTTP endpoint
# ---------------------------------------------------------------------------

class TestLiveServer:
    def test_endpoints_over_a_real_run(self):
        with obs.run(name="live-test") as ctx:
            run_hpcg(8, max_iters=4, mg_levels=2, validate_symmetry=False)
            with live.LiveServer(live.context_source(ctx)) as server:
                assert server.port > 0        # ephemeral bind resolved

                status, ctype, body = _get(f"{server.url}/metrics")
                assert status == 200
                assert ctype == live.PROMETHEUS_CONTENT_TYPE
                assert "# TYPE cg_iteration gauge" in body
                assert "cg_iteration 4" in body
                assert "mg_level_visits_total" in body
                assert "obs_tracer_dropped_spans 0" in body

                status, ctype, body = _get(f"{server.url}/healthz")
                health = json.loads(body)
                assert (status, health["status"]) == (200, "ok")
                assert health["run_id"] == ctx.run_id
                assert health["spans"] > 0

                _, _, body = _get(f"{server.url}/manifest")
                obs.validate_manifest(json.loads(body))

                _, _, body = _get(f"{server.url}/progress")
                progress = json.loads(body)
                assert progress["cg"]["iteration"] == 4.0
                assert progress["cg"]["residual"] > 0
                assert progress["cg"]["iterations_total"] == 4.0
                assert progress["mg"]["level_visits"]["level=0"] > 0
                assert progress["dist"]["iteration"] is None

                # self-observability: the scrapes above are themselves
                # in the registry the next scrape serves
                _, _, body = _get(f"{server.url}/metrics")
                assert "obs_http_requests_total" in body
                assert 'endpoint="/metrics"' in body
                assert "obs_scrape_seconds" in body

    def test_unknown_endpoint_404_lists_routes(self):
        with obs.run() as ctx:
            with live.LiveServer(live.context_source(ctx)) as server:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _get(f"{server.url}/nope")
                assert err.value.code == 404
                doc = json.loads(err.value.read().decode("utf-8"))
                assert "/metrics" in doc["endpoints"]

    def test_broken_provider_is_500_not_crash(self):
        source = live.TelemetrySource(
            metrics_text=lambda: "ok 1\n",
            manifest=lambda: (_ for _ in ()).throw(ValueError("no doc")),
            progress=lambda: {},
            health=lambda: {"status": "ok"},
        )
        with live.LiveServer(source) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/manifest")
            assert err.value.code == 500
            # and the server keeps serving afterwards
            status, _, _ = _get(f"{server.url}/healthz")
            assert status == 200

    def test_stop_closes_the_socket(self):
        with obs.run() as ctx:
            server = live.LiveServer(live.context_source(ctx))
            server.start()
            url = server.url
            _get(f"{url}/healthz")
            server.stop()
            with pytest.raises(urllib.error.URLError):
                _get(f"{url}/healthz", timeout=1.0)

    def test_file_source_serves_finished_artifacts(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        with obs.run() as ctx:
            ctx.metrics.gauge("cg_iteration", "it").set(7)
            obs.export.write_metrics(str(metrics_path), ctx)
        source = live.file_source(metrics=str(metrics_path))
        with live.LiveServer(source) as server:
            _, ctype, body = _get(f"{server.url}/metrics")
            assert ctype == live.PROMETHEUS_CONTENT_TYPE
            assert "# TYPE cg_iteration gauge" in body
            _, _, body = _get(f"{server.url}/progress")
            assert json.loads(body)["cg"]["iteration"] == 7.0
            _, _, body = _get(f"{server.url}/healthz")
            assert json.loads(body)["mode"] == "files"
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/manifest")   # no manifest file given
            assert err.value.code == 500

    def test_progress_snapshot_empty_registry(self):
        snap = live.progress_snapshot(MetricsRegistry())
        assert snap["cg"]["iteration"] is None
        assert snap["mg"]["level_visits"] == {}
        assert snap["dist"]["supersteps"] is None


# ---------------------------------------------------------------------------
# push transports
# ---------------------------------------------------------------------------

class _PushReceiver:
    """A local pushgateway stand-in that can fail the first N requests."""

    def __init__(self, fail_first: int = 0):
        self.received = []
        self.requests = 0
        receiver = self

        class Handler(BaseHTTPRequestHandler):
            def do_PUT(self):        # noqa: N802
                receiver.requests += 1
                if receiver.requests <= fail_first:
                    self.send_response(503)
                    self.end_headers()
                    return
                length = int(self.headers.get("Content-Length", 0))
                receiver.received.append({
                    "path": self.path,
                    "content_type": self.headers.get("Content-Type"),
                    "body": self.rfile.read(length).decode("utf-8"),
                })
                self.send_response(200)
                self.end_headers()

            def log_message(self, format, *args):
                pass

        self._httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.url = f"http://127.0.0.1:{self._httpd.server_address[1]}"
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()

    def close(self):
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()


@pytest.fixture
def receiver():
    rx = _PushReceiver()
    yield rx
    rx.close()


class TestPushTransports:
    def test_push_delivers_exposition(self, receiver):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc(2)
        pusher = live.MetricsPusher(receiver.url, job="hpcg run",
                                    registry=registry)
        assert pusher.push(registry.to_prometheus()) is True
        (req,) = receiver.received
        assert req["path"] == "/metrics/job/hpcg%20run"
        assert req["content_type"] == live.PROMETHEUS_CONTENT_TYPE
        assert "jobs_total 2" in req["body"]
        assert pusher.pushes == 1 and pusher.failures == 0
        assert registry.counter("obs_push_total", "").value(outcome="ok") == 1

    def test_push_retries_through_transient_failures(self):
        rx = _PushReceiver(fail_first=2)
        try:
            pusher = live.MetricsPusher(rx.url, retries=3, backoff=0.01)
            assert pusher.push("x 1\n") is True
            assert rx.requests == 3          # two 503s, then delivered
        finally:
            rx.close()

    def test_push_exhaustion_returns_false(self):
        registry = MetricsRegistry()
        # a port nothing listens on: every attempt fails fast
        pusher = live.MetricsPusher("http://127.0.0.1:9", retries=1,
                                    backoff=0.0, timeout=0.5,
                                    registry=registry)
        assert pusher.push("x 1\n") is False
        assert pusher.failures == 1
        assert pusher.last_error
        counter = registry.counter("obs_push_total", "")
        assert counter.value(outcome="error") == 1

    def test_push_from_source_callable(self, receiver):
        with obs.run() as ctx:
            ctx.metrics.gauge("cg_residual_last", "r").set(0.5)
            source = live.context_source(ctx)
            pusher = live.MetricsPusher(receiver.url,
                                        source=source.metrics_text)
            assert pusher.push() is True
        assert "cg_residual_last 0.5" in receiver.received[0]["body"]

    def test_push_parameter_validation(self):
        with pytest.raises(InvalidValue):
            live.MetricsPusher("http://x", retries=-1)
        with pytest.raises(InvalidValue):
            live.MetricsPusher("http://x", backoff=-0.1)
        with pytest.raises(InvalidValue):
            live.MetricsPusher("http://x").push()   # no text, no source

    def test_textfile_collector_atomic_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("up", "liveness").set(1)
        out = tmp_path / "node" / "repro.prom"
        out.parent.mkdir()
        collector = live.TextfileCollector(str(out),
                                           registry.to_prometheus,
                                           registry=registry)
        assert collector.write() == str(out)
        assert "# TYPE up gauge" in out.read_text()
        # no temp debris: the rename already happened
        assert [p.name for p in out.parent.iterdir()] == ["repro.prom"]
        registry.gauge("up", "liveness").set(0)
        collector.write()
        assert "up 0" in out.read_text()
        assert collector.writes == 2


class TestPushBackoffHardening:
    """Retry pacing under a dead gateway, on a monkeypatched clock —
    no real sleeps, no real elapsed time."""

    DEAD = "http://127.0.0.1:9"

    @staticmethod
    def _instrument(pusher, clock_step: float = 0.0):
        """Replace the pusher's clock/sleep/random with fakes; returns
        the list real sleeps would have drawn from."""
        sleeps = []
        now = [0.0]

        def monotonic():
            now[0] += clock_step
            return now[0]

        pusher._monotonic = monotonic
        pusher._sleep = sleeps.append
        pusher._random = lambda: 0.5
        return sleeps

    def test_full_jitter_scales_exponential_delays(self):
        pusher = live.MetricsPusher(self.DEAD, retries=3, backoff=0.2,
                                    timeout=0.2)
        sleeps = self._instrument(pusher)
        assert pusher.push("x 1\n") is False
        # delay = backoff * 2**attempt * uniform(0,1), with the draw
        # pinned at 0.5
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_off_restores_deterministic_backoff(self):
        pusher = live.MetricsPusher(self.DEAD, retries=3, backoff=0.2,
                                    jitter=False, timeout=0.2)
        sleeps = self._instrument(pusher)
        assert pusher.push("x 1\n") is False
        assert sleeps == pytest.approx([0.2, 0.4, 0.8])

    def test_wall_clock_cap_beats_retry_count(self):
        # a generous retry budget, but the monotonic clock advances 25s
        # per reading against a 60s cap: the loop must give up early
        # and clamp its last sleep to the remaining budget
        pusher = live.MetricsPusher(self.DEAD, retries=100, backoff=1000.0,
                                    jitter=False, max_elapsed=60.0,
                                    timeout=0.2)
        sleeps = self._instrument(pusher, clock_step=25.0)
        assert pusher.push("x 1\n") is False
        assert pusher.failures == 1
        assert sleeps == pytest.approx([35.0, 10.0])   # clamped, then done

    def test_max_elapsed_validation(self):
        with pytest.raises(InvalidValue):
            live.MetricsPusher("http://x", max_elapsed=0.0)


class _CountingPusher:
    """Stands in for MetricsPusher where only push() counts matter."""

    def __init__(self):
        self.pushes = 0

    def push(self, text=None):
        self.pushes += 1
        return True


class TestPeriodicPusher:
    def test_periodic_ticks_and_final_push(self):
        pusher = _CountingPusher()
        periodic = live.PeriodicPusher(pusher, interval=0.02)
        periodic.start()
        assert periodic.running
        deadline = time.perf_counter() + 5.0
        while periodic.ticks < 2 and time.perf_counter() < deadline:
            time.sleep(0.01)
        periodic.stop()
        assert not periodic.running
        assert periodic.ticks >= 2
        # every tick pushed, plus the final push on stop
        assert pusher.pushes == periodic.ticks + 1

    def test_stop_without_final_push(self):
        pusher = _CountingPusher()
        with live.PeriodicPusher(pusher, interval=60.0,
                                 final_push=False) as periodic:
            assert periodic.running
        assert not periodic.running
        assert pusher.pushes == periodic.ticks  # no extra final push

    def test_lifecycle_validation(self):
        with pytest.raises(InvalidValue):
            live.PeriodicPusher(_CountingPusher(), interval=0.0)
        periodic = live.PeriodicPusher(_CountingPusher(), interval=60.0)
        periodic.start()
        try:
            with pytest.raises(InvalidValue):
                periodic.start()
        finally:
            periodic.stop()
        periodic.stop()                          # idempotent

    def test_exported_from_obs_package(self):
        assert obs.PeriodicPusher is live.PeriodicPusher


# ---------------------------------------------------------------------------
# sampling profiler
# ---------------------------------------------------------------------------

def _busy_wait(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1


class TestSamplingProfiler:
    def test_samples_attributed_to_active_span(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with SamplingProfiler(hz=250, tracer=tracer,
                              registry=registry) as prof:
            with tracer.span("hot/loop"):
                _busy_wait(0.25)
        assert prof.ticks > 0
        assert prof.sample_count > 0
        folded = prof.folded_stacks()
        hot = [k for k in folded if k.startswith("hot/loop;")]
        assert hot, f"no span-attributed stacks in {list(folded)[:5]}"
        # python frames sit below the span prefix
        assert any("test_obs_live.py:_busy_wait" in k for k in hot)
        assert registry.counter("obs_profiler_ticks_total", "").value() > 0
        assert registry.counter("obs_profiler_samples_total", "").value() > 0

    def test_spanless_threads_skipped_with_tracer(self):
        tracer = Tracer()
        with SamplingProfiler(hz=200, tracer=tracer) as prof:
            _busy_wait(0.1)          # no span open anywhere
        assert prof.sample_count == 0
        assert prof.folded_stacks() == {}

    def test_all_threads_mode_samples_without_spans(self):
        with SamplingProfiler(hz=200) as prof:   # no tracer: sample all
            _busy_wait(0.1)
        assert prof.sample_count > 0
        assert any("_busy_wait" in k for k in prof.folded_stacks())

    def test_folded_output_feeds_the_flame_toolchain(self):
        tracer = Tracer()
        with SamplingProfiler(hz=200, tracer=tracer) as prof:
            with tracer.span("work"):
                _busy_wait(0.15)
        folded = prof.folded_stacks()
        # counts are microseconds: one sample ≈ one 5 ms period
        period_us = round(1e6 / 200)
        raw = prof.raw_samples()
        assert all(folded[k] == raw[k] * period_us for k in raw)
        assert any(k.startswith("work;") for k in folded)
        # deep stacks are leftmost-trimmed in the view: the leaf stays
        rendered = flame.render_top(folded, top=5)
        assert "_busy_wait" in rendered
        lines = flame.folded_lines(folded)
        assert flame.parse_folded(lines) == folded

    def test_overrun_accounting(self):
        prof = SamplingProfiler(hz=200)
        prof.start()
        time.sleep(0.05)
        prof.stop()
        # ticks either kept up or every miss is accounted, never silent
        assert prof.ticks >= 1
        assert prof.overruns >= 0

    def test_lifecycle_validation(self):
        with pytest.raises(InvalidValue):
            SamplingProfiler(hz=0)
        prof = SamplingProfiler(hz=50)
        prof.start()
        with pytest.raises(InvalidValue):
            prof.start()
        prof.stop()
        prof.stop()                    # idempotent
        prof.start()                   # restartable after stop
        prof.stop()


# ---------------------------------------------------------------------------
# the guarantees: numerics untouched, overhead bounded (satellite c)
# ---------------------------------------------------------------------------

class TestLiveGuarantees:
    def test_residuals_byte_identical_with_full_live_stack(self, tmp_path):
        plain = run_hpcg(8, max_iters=5, mg_levels=2,
                         validate_symmetry=False)
        with obs.run() as ctx:
            sink = StreamingSink(str(tmp_path / "s.jsonl"),
                                 tracer=ctx.tracer)
            try:
                with live.LiveServer(live.context_source(ctx)):
                    with SamplingProfiler(hz=100, tracer=ctx.tracer,
                                          registry=ctx.metrics):
                        observed = run_hpcg(8, max_iters=5, mg_levels=2,
                                            validate_symmetry=False)
            finally:
                sink.close()
        assert observed.cg.residuals == plain.cg.residuals
        assert observed.cg.normr == plain.cg.normr

    def test_overhead_smoke_streaming_and_profiling(self, tmp_path):
        """Satellite: the <5% overhead envelope holds with the streaming
        sink writing JSONL and the profiler sampling at 100 Hz."""
        def solve_seconds(live_stack: bool) -> float:
            best = float("inf")
            for i in range(3):
                t0 = time.perf_counter()
                if live_stack:
                    with obs.run() as ctx:
                        sink = StreamingSink(
                            str(tmp_path / f"ov{i}.jsonl"),
                            tracer=ctx.tracer)
                        try:
                            with SamplingProfiler(hz=100,
                                                  tracer=ctx.tracer):
                                run_hpcg(16, max_iters=10,
                                         validate_symmetry=False)
                        finally:
                            sink.close()
                else:
                    with obs.disabled():
                        run_hpcg(16, max_iters=10, validate_symmetry=False)
                best = min(best, time.perf_counter() - t0)
            return best

        solve_seconds(False)                     # warm every cache once
        untraced = solve_seconds(False)
        observed = solve_seconds(True)
        assert observed <= untraced * 1.05 + 0.1, (
            f"live-telemetry overhead too high: {observed:.4f}s observed "
            f"vs {untraced:.4f}s untraced"
        )


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCLI:
    def test_driver_live_flags(self, tmp_path, capsys):
        stream_path = tmp_path / "stream.jsonl"
        folded_path = tmp_path / "prof.folded"
        metrics_path = tmp_path / "metrics.json"
        rc = driver_main([
            "--nx", "8", "--iters", "3", "--mg-levels", "2",
            "--serve-metrics", "0",
            "--trace-stream", str(stream_path),
            "--sample-profile", "200",
            "--folded-out", str(folded_path),
            "--metrics-json", str(metrics_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "live telemetry at http://" in out
        assert "sampling profiler:" in out
        _, spans, footer = stream.read_stream(str(stream_path))
        assert footer is not None and footer["spans"] == len(spans)
        assert "hpcg/solve" in {s["name"] for s in spans}
        flame.parse_folded(folded_path.read_text().splitlines())
        body = json.loads(metrics_path.read_text())
        assert "obs_profiler_ticks_total" in body["metrics"]

    def test_sample_profile_flag_default_hz(self, tmp_path):
        # bare --sample-profile means 100 Hz (argparse const)
        rc = driver_main([
            "--nx", "8", "--iters", "2", "--mg-levels", "2",
            "--sample-profile",
            "--metrics-json", str(tmp_path / "m.json"),
        ])
        assert rc == 0

    def test_obs_serve_once(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        with obs.run() as ctx:
            ctx.metrics.counter("c_total", "c").inc()
            obs.export.write_metrics(str(metrics_path), ctx)
        rc = obs_main(["serve", "--metrics", str(metrics_path),
                       "--port", "0", "--once"])
        assert rc == 0
        assert "serving telemetry on http://" in capsys.readouterr().out

    def test_obs_push_textfile(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        with obs.run() as ctx:
            ctx.metrics.gauge("up", "liveness").set(1)
            obs.export.write_metrics(str(metrics_path), ctx)
        prom = tmp_path / "out.prom"
        rc = obs_main(["push", "--metrics", str(metrics_path),
                       "--textfile", str(prom)])
        assert rc == 0
        assert "# TYPE up gauge" in prom.read_text()
        assert obs_main(["push", "--metrics", str(metrics_path)]) == 2
        capsys.readouterr()

    def test_obs_push_http(self, tmp_path, receiver):
        metrics_path = tmp_path / "metrics.json"
        with obs.run() as ctx:
            ctx.metrics.counter("pushed_total", "p").inc(5)
            obs.export.write_metrics(str(metrics_path), ctx)
        rc = obs_main(["push", "--metrics", str(metrics_path),
                       "--url", receiver.url, "--job", "ci"])
        assert rc == 0
        assert "pushed_total 5" in receiver.received[0]["body"]
        # an unreachable gateway: bounded failure, exit 1, no hang
        rc = obs_main(["push", "--metrics", str(metrics_path),
                       "--url", "http://127.0.0.1:9",
                       "--retries", "0"])
        assert rc == 1
