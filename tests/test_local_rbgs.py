"""Locally-executed RBGS with colour-filtered halo exchange.

Bit-equality with the shared-memory smoother proves the reference
design's per-colour exchange protocol (paper Section IV) is lossless.
"""

import numpy as np
import pytest

from repro.dist.comm import CommTracker
from repro.dist.halo import LocalRBGSExecutor
from repro.dist.partition import Grid3DPartition
from repro.hpcg.coloring import lattice_coloring
from repro.hpcg.problem import generate_problem
from repro.ref.sgs import RefRBGS
from repro.util.errors import DimensionMismatch, InvalidValue


@pytest.fixture(scope="module")
def setup():
    problem = generate_problem(8)
    A = problem.A.to_scipy()
    colors = lattice_coloring(problem.grid)
    part = Grid3DPartition(problem.grid, 4)
    owners = part.owner(np.arange(problem.n))
    return problem, A, colors, owners


class TestLocalRBGS:
    def test_forward_sweep_bit_identical(self, setup, rng):
        problem, A, colors, owners = setup
        r = rng.standard_normal(problem.n)
        z_dist = np.zeros(problem.n)
        LocalRBGSExecutor(A, owners, 4, colors).sweep(z_dist, r)
        z_ref = np.zeros(problem.n)
        RefRBGS(A, colors).forward(z_ref, r)
        np.testing.assert_array_equal(z_dist, z_ref)

    def test_symmetric_smooth_bit_identical(self, setup, rng):
        problem, A, colors, owners = setup
        r = rng.standard_normal(problem.n)
        z_dist = np.zeros(problem.n)
        LocalRBGSExecutor(A, owners, 4, colors).smooth(z_dist, r, sweeps=2)
        z_ref = np.zeros(problem.n)
        RefRBGS(A, colors).smooth(z_ref, r, sweeps=2)
        np.testing.assert_array_equal(z_dist, z_ref)

    def test_nonzero_initial_guess(self, setup, rng):
        problem, A, colors, owners = setup
        r = rng.standard_normal(problem.n)
        z0 = rng.standard_normal(problem.n)
        z_dist = z0.copy()
        LocalRBGSExecutor(A, owners, 4, colors).sweep(z_dist, r)
        z_ref = z0.copy()
        RefRBGS(A, colors).forward(z_ref, r)
        np.testing.assert_array_equal(z_dist, z_ref)

    def test_one_sync_per_color(self, setup, rng):
        problem, A, colors, owners = setup
        tracker = CommTracker(4)
        ex = LocalRBGSExecutor(A, owners, 4, colors, tracker=tracker)
        z = np.zeros(problem.n)
        ex.sweep(z, rng.standard_normal(problem.n))
        rbgs_syncs = sum(1 for s in tracker.supersteps
                         if s.label == "rbgs_halo")
        assert rbgs_syncs == 8

    def test_color_halo_less_than_full_halo(self, setup, rng):
        """Each colour's exchange is ~1/8 of the full halo."""
        problem, A, colors, owners = setup
        tracker = CommTracker(4)
        ex = LocalRBGSExecutor(A, owners, 4, colors, tracker=tracker)
        z = np.zeros(problem.n)
        ex.sweep(z, rng.standard_normal(problem.n))
        full_halo = ex.base.halo_bytes_per_exchange()
        per_color = [s.total_bytes for s in tracker.supersteps
                     if s.label == "rbgs_halo"]
        assert sum(per_color) == full_halo   # colours partition the halo
        assert max(per_color) < full_halo / 2

    def test_validation(self, setup):
        problem, A, colors, owners = setup
        with pytest.raises(DimensionMismatch):
            LocalRBGSExecutor(A, owners, 4, colors[:5])
        ex = LocalRBGSExecutor(A, owners, 4, colors)
        with pytest.raises(DimensionMismatch):
            ex.sweep(np.zeros(3), np.zeros(problem.n))

    def test_zero_diagonal_rejected(self, setup):
        import scipy.sparse as sp
        problem, A, colors, owners = setup
        bad = A.copy().tolil()
        bad[0, 0] = 0.0
        with pytest.raises(InvalidValue):
            LocalRBGSExecutor(sp.csr_matrix(bad), owners, 4, colors)
