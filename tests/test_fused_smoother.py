"""The fused smoother fast path: bit-exactness, fallback, and the lane.

The fused-sweep contract, enforced per provider × colouring × sweep
order: :class:`RBGSSmoother`'s fast path (the provider's prebuilt
:class:`~repro.graphblas.substrate.base.ColorSweep`) must produce
iterates bit-identical — values *and* signed zeros — to the reference
Listing 2/3 transcription, whole CG residual histories included; the
``REPRO_FUSED=0`` kill switch must restore the reference path; and the
optional numba jit lane must be invisible whichever way it is switched
(tests for the compiled side skip when numba is absent — the CI
``fused`` leg installs it).
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import graphblas as grb
from repro.graphblas import fused as fused_mod
from repro.graphblas import substrate
from repro.graphblas.substrate import jit
from repro.hpcg.cg import CGWorkspace, pcg
from repro.hpcg.coloring import color_masks, greedy_coloring, lattice_coloring
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.smoothers import JacobiSmoother, RBGSSmoother

PROVIDERS = list(substrate.available())

common = settings(max_examples=20,
                  suppress_health_check=[HealthCheck.too_slow], deadline=None)


def assert_bit_identical(got, want):
    got, want = np.asarray(got), np.asarray(want)
    assert np.array_equal(got, want)
    assert np.array_equal(np.signbit(got), np.signbit(want))


def smoother_pair(A, diag, masks):
    """(fused fast path, pinned reference transcription) smoothers."""
    return (
        RBGSSmoother(A, diag, masks, fused=True),
        RBGSSmoother(A, diag, masks, fused=False),
    )


def run_both(fused, ref, n, r, op, sweeps=2):
    z1 = grb.Vector.dense(n, 0.0)
    z2 = grb.Vector.dense(n, 0.0)
    if op == "smooth":
        fused.smooth(z1, r, sweeps=sweeps)
        ref.smooth(z2, r, sweeps=sweeps)
    else:
        for _ in range(sweeps):
            getattr(fused, op)(z1, r)
            getattr(ref, op)(z2, r)
    return z1.to_dense(), z2.to_dense()


# ---------------------------------------------------------------------------
# bit-exactness across providers, colourings, sweep orders
# ---------------------------------------------------------------------------

class TestFusedBitExact:
    @pytest.mark.parametrize("name", PROVIDERS)
    @pytest.mark.parametrize("op", ["forward", "backward", "smooth"])
    def test_stencil_lattice_coloring(self, problem8, rng, name, op):
        A = grb.Matrix.from_scipy(problem8.A.to_scipy(), substrate=name)
        masks = color_masks(lattice_coloring(problem8.grid))
        fused, ref = smoother_pair(A, problem8.A_diag, masks)
        assert fused.fused_active and not ref.fused_active
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        assert_bit_identical(*run_both(fused, ref, problem8.n, r, op))

    @pytest.mark.parametrize("name", PROVIDERS)
    def test_greedy_coloring(self, problem8, rng, name):
        A = grb.Matrix.from_scipy(problem8.A.to_scipy(), substrate=name)
        masks = color_masks(greedy_coloring(problem8.A))
        fused, ref = smoother_pair(A, problem8.A_diag, masks)
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        assert_bit_identical(*run_both(fused, ref, problem8.n, r, "smooth"))

    @pytest.mark.parametrize("name", PROVIDERS)
    @common
    @given(data=st.data())
    def test_random_operator_random_partition(self, name, data):
        """Random diagonally-present operators under arbitrary colour
        partitions (not necessarily independent sets — the fast path
        must match the transcription's semantics regardless)."""
        n = data.draw(st.integers(2, 24), label="n")
        seed = data.draw(st.integers(0, 2**32 - 1), label="seed")
        ncolors = data.draw(st.integers(1, min(4, n)), label="ncolors")
        rng = np.random.default_rng(seed)
        csr = sp.random(n, n, density=0.3, random_state=rng, format="csr")
        # a nonzero diagonal: the smoother requires it, HPCG provides it
        csr = (csr + sp.diags(rng.uniform(1.0, 2.0, n))).tocsr()
        csr.sort_indices()
        colors = rng.integers(0, ncolors, n)
        colors[:ncolors] = np.arange(ncolors)   # every class non-empty
        masks = color_masks(colors)
        A = grb.Matrix.from_scipy(csr, substrate=name)
        diag = grb.Vector.from_dense(csr.diagonal())
        fused, ref = smoother_pair(A, diag, masks)
        r = grb.Vector.from_dense(rng.standard_normal(n))
        got, want = run_both(fused, ref, n, r, "smooth", sweeps=1)
        assert_bit_identical(got, want)

    @pytest.mark.parametrize("name", PROVIDERS)
    def test_signed_zeros_survive(self, problem4, name):
        """-0.0-laden iterates and cancelling stencil entries: the fused
        path must keep the exact accumulation order, so values *and*
        signbits match the transcription (``assert_bit_identical``
        checks ``np.signbit`` everywhere — this test feeds inputs where
        zero signs can actually differ if an implementation pads)."""
        csr = problem4.A.to_scipy()
        A = grb.Matrix.from_scipy(csr, substrate=name)
        diag = grb.Vector.from_dense(csr.diagonal())
        masks = color_masks(lattice_coloring(problem4.grid))
        fused, ref = smoother_pair(A, diag, masks)
        n = problem4.n
        r_vals = np.zeros(n)
        r_vals[::2] = -0.0                           # signed-zero rhs
        z0 = np.zeros(n)
        z0[1::2] = -0.0                              # signed-zero iterate
        r = grb.Vector.from_dense(r_vals)
        z1 = grb.Vector.from_dense(z0.copy())
        z2 = grb.Vector.from_dense(z0.copy())
        fused.smooth(z1, r)
        ref.smooth(z2, r)
        assert_bit_identical(z1.to_dense(), z2.to_dense())

    @pytest.mark.parametrize("name", PROVIDERS)
    def test_cg_residual_history_byte_identical(self, name):
        """The acceptance criterion: whole CG+MG solves, same bytes,
        with the provider pinned through the entire MG hierarchy."""
        from repro.hpcg.problem import generate_problem

        problem = generate_problem(8, substrate=name)
        histories = []
        for fused in (True, False):
            hierarchy = build_hierarchy(problem, levels=3, fused=fused)
            x = problem.x0.dup()
            result = pcg(problem.A, problem.b, x,
                         preconditioner=MGPreconditioner(hierarchy),
                         max_iters=10)
            histories.append(result.residuals)
        assert histories[0] == histories[1]


# ---------------------------------------------------------------------------
# the kill switch and the fallback contract
# ---------------------------------------------------------------------------

class TestKillSwitch:
    def test_env_disables_fast_path(self, problem8, monkeypatch):
        monkeypatch.setenv(fused_mod.ENV_FUSED, "0")
        masks = color_masks(lattice_coloring(problem8.grid))
        s = RBGSSmoother(problem8.A, problem8.A_diag, masks)
        assert not s.fused_active
        j = JacobiSmoother(problem8.A, problem8.A_diag)
        assert not j.fused_active

    def test_env_off_matches_fused_results(self, problem8, rng, monkeypatch):
        masks = color_masks(lattice_coloring(problem8.grid))
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z_fused = grb.Vector.dense(problem8.n, 0.0)
        RBGSSmoother(problem8.A, problem8.A_diag, masks).smooth(z_fused, r)
        monkeypatch.setenv(fused_mod.ENV_FUSED, "0")
        z_ref = grb.Vector.dense(problem8.n, 0.0)
        RBGSSmoother(problem8.A, problem8.A_diag, masks).smooth(z_ref, r)
        assert_bit_identical(z_fused.to_dense(), z_ref.to_dense())

    def test_explicit_param_beats_env(self, problem8, monkeypatch):
        monkeypatch.setenv(fused_mod.ENV_FUSED, "0")
        masks = color_masks(lattice_coloring(problem8.grid))
        s = RBGSSmoother(problem8.A, problem8.A_diag, masks, fused=True)
        assert s.fused_active

    def test_kill_switch_applies_to_built_smoothers(self, problem8, rng,
                                                    monkeypatch):
        """REPRO_FUSED=0 is read per call: smoothers armed *before* the
        switch flips must fall back too (and stay bit-identical)."""
        masks = color_masks(lattice_coloring(problem8.grid))
        s = RBGSSmoother(problem8.A, problem8.A_diag, masks)
        assert s.fused_active
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z1 = grb.Vector.dense(problem8.n, 0.0)
        s.smooth(z1, r)
        monkeypatch.setenv(fused_mod.ENV_FUSED, "0")
        z2 = grb.Vector.dense(problem8.n, 0.0)
        log = grb.backend.EventLog()
        with grb.backend.collect(log):
            s.smooth(z2, r)                       # reference path now
        assert log.count("fused_mxv_lambda") == 0
        assert log.count("mxv") > 0
        assert_bit_identical(z1.to_dense(), z2.to_dense())

    def test_plan_declines_sparse_vectors(self, problem8, rng):
        """A sparse z cannot take the fast path; the reference path's
        own semantics (presence checks) must apply instead."""
        masks = color_masks(lattice_coloring(problem8.grid))
        s = RBGSSmoother(problem8.A, problem8.A_diag, masks, fused=True)
        z = grb.Vector.sparse(problem8.n)            # all-absent
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        from repro.util.errors import InvalidValue
        with pytest.raises(InvalidValue):
            s.forward(z, r)                           # same error as reference


# ---------------------------------------------------------------------------
# plan invalidation: mutation rebuilds the sweep
# ---------------------------------------------------------------------------

class TestPlanInvalidation:
    def test_set_substrate_rebuilds_sweep(self, problem8, rng):
        """set_substrate swaps providers without bumping the version;
        the plan must still notice and re-price in the new format."""
        masks = color_masks(lattice_coloring(problem8.grid))
        A = grb.Matrix.from_scipy(problem8.A.to_scipy(), substrate="csr")
        s = RBGSSmoother(A, problem8.A_diag, masks, fused=True)
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z = grb.Vector.dense(problem8.n, 0.0)
        s.smooth(z, r)                            # builds the csr sweep
        A.set_substrate("sellcs")
        z1 = grb.Vector.dense(problem8.n, 0.0)
        log = grb.backend.EventLog()
        with grb.backend.collect(log):
            s.smooth(z1, r)
        assert {e.fmt for e in log.events} == {"sellcs"}
        z2 = grb.Vector.dense(problem8.n, 0.0)
        RBGSSmoother(A, problem8.A_diag, masks, fused=False).smooth(z2, r)
        assert_bit_identical(z1.to_dense(), z2.to_dense())

    def test_stale_plan_not_reused_after_mutation(self, problem4, rng):
        masks = color_masks(lattice_coloring(problem4.grid))
        A = grb.Matrix.from_scipy(problem4.A.to_scipy())
        diag = grb.diag(A)
        smoother = RBGSSmoother(A, diag, masks, fused=True)
        r = grb.Vector.from_dense(rng.standard_normal(problem4.n))
        z = grb.Vector.dense(problem4.n, 0.0)
        smoother.smooth(z, r)
        # scale one off-diagonal entry; diag vector unchanged
        i, j = int(A.to_coo()[0][1]), int(A.to_coo()[1][1])
        A.set_element(i, j, 3.25)
        ref = RBGSSmoother(A, diag, masks, fused=False)
        z1 = grb.Vector.dense(problem4.n, 0.0)
        z2 = grb.Vector.dense(problem4.n, 0.0)
        smoother.smooth(z1, r)
        ref.smooth(z2, r)
        assert_bit_identical(z1.to_dense(), z2.to_dense())


# ---------------------------------------------------------------------------
# Jacobi's fused update
# ---------------------------------------------------------------------------

class TestFusedJacobi:
    @pytest.mark.parametrize("name", PROVIDERS)
    def test_bit_identical(self, problem8, rng, name):
        A = grb.Matrix.from_scipy(problem8.A.to_scipy(), substrate=name)
        fused = JacobiSmoother(A, problem8.A_diag, fused=True)
        ref = JacobiSmoother(A, problem8.A_diag, fused=False)
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z1 = grb.Vector.dense(problem8.n, 0.0)
        z2 = grb.Vector.dense(problem8.n, 0.0)
        fused.smooth(z1, r, sweeps=3)
        ref.smooth(z2, r, sweeps=3)
        assert_bit_identical(z1.to_dense(), z2.to_dense())


# ---------------------------------------------------------------------------
# honest pricing: the fused stream through the fused-traffic hooks
# ---------------------------------------------------------------------------

class TestFusedPricing:
    def test_fused_events_tagged_and_cheaper(self, problem8, rng):
        masks = color_masks(lattice_coloring(problem8.grid))
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        totals = {}
        for fused in (True, False):
            s = RBGSSmoother(problem8.A, problem8.A_diag, masks, fused=fused)
            z = grb.Vector.dense(problem8.n, 0.0)
            log = grb.backend.EventLog()
            with grb.backend.collect(log):
                s.smooth(z, r)
            totals[fused] = log.total("bytes")
            if fused:
                assert log.count("fused_mxv_lambda") == 2 * len(masks)
                assert log.count("mxv") == 0
                assert all(e.fmt == problem8.A.substrate
                           for e in log.events)
        # fusion elides the workspace round trip: strictly fewer bytes
        assert totals[True] < totals[False]

    def test_jacobi_fused_pricing(self, problem8, rng):
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        s = JacobiSmoother(problem8.A, problem8.A_diag, fused=True)
        z = grb.Vector.dense(problem8.n, 0.0)
        log = grb.backend.EventLog()
        with grb.backend.collect(log):
            s.smooth(z, r, sweeps=2)
        assert log.count("fused_mxv_lambda") == 2
        assert log.total("bytes") > 0


# ---------------------------------------------------------------------------
# the jit lane: gated, optional, bit-invisible
# ---------------------------------------------------------------------------

HAVE_NUMBA = jit._numba is not None


class TestJitLane:
    def test_available_reflects_numba_and_env(self, monkeypatch):
        assert jit.available() == HAVE_NUMBA
        monkeypatch.setenv(jit.ENV_VAR, "0")
        assert not jit.available()
        monkeypatch.delenv(jit.ENV_VAR)
        assert jit.available() == HAVE_NUMBA

    def test_pure_numpy_without_numba(self, problem8, rng):
        """The supported-everywhere configuration: no numba, same bits
        (trivially the numpy path; this is the fallback regression)."""
        x = rng.standard_normal(problem8.n)
        csr = problem8.A.to_scipy()
        for name in PROVIDERS:
            prov = substrate.get(name)(csr)
            assert np.array_equal(prov.mxv(x),
                                  substrate.get("csr")(csr).mxv(x))

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_jit_mxv_bit_identical(self, problem8, rng, monkeypatch):
        x = rng.standard_normal(problem8.n)
        csr = problem8.A.to_scipy()
        for name in PROVIDERS:
            jitted = substrate.get(name)(csr).mxv(x)
            monkeypatch.setenv(jit.ENV_VAR, "0")
            plain = substrate.get(name)(csr).mxv(x)
            monkeypatch.delenv(jit.ENV_VAR)
            assert np.array_equal(jitted, plain), name
            assert np.array_equal(np.signbit(jitted), np.signbit(plain))

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_jit_fused_sweep_bit_identical(self, problem8, rng, monkeypatch):
        masks = color_masks(lattice_coloring(problem8.grid))
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        outs = []
        for env in ("1", "0"):
            monkeypatch.setenv(jit.ENV_VAR, env)
            for name in PROVIDERS:
                A = grb.Matrix.from_scipy(problem8.A.to_scipy(),
                                          substrate=name)
                s = RBGSSmoother(A, problem8.A_diag, masks, fused=True)
                z = grb.Vector.dense(problem8.n, 0.0)
                s.smooth(z, r, sweeps=2)
                outs.append(z.to_dense())
        half = len(outs) // 2
        for a, b in zip(outs[:half], outs[half:]):
            assert_bit_identical(a, b)


# ---------------------------------------------------------------------------
# the CG workspace (the consumer-side allocation fix riding along)
# ---------------------------------------------------------------------------

class TestCGWorkspace:
    def test_reused_workspace_identical_solve(self, problem8):
        hierarchy = build_hierarchy(problem8, levels=2)
        precond = MGPreconditioner(hierarchy)
        ws = CGWorkspace(problem8.n)
        histories = []
        for _ in range(2):
            x = problem8.x0.dup()
            res = pcg(problem8.A, problem8.b, x, preconditioner=precond,
                      max_iters=8, workspace=ws)
            histories.append(res.residuals)
        x = problem8.x0.dup()
        fresh = pcg(problem8.A, problem8.b, x, preconditioner=precond,
                    max_iters=8)
        assert histories[0] == histories[1] == fresh.residuals

    def test_size_mismatch_raises(self, problem8):
        from repro.util.errors import DimensionMismatch
        with pytest.raises(DimensionMismatch):
            pcg(problem8.A, problem8.b, problem8.x0.dup(),
                max_iters=1, workspace=CGWorkspace(problem8.n + 1))
