"""MatrixMarket round trips and random generators."""

import io

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.io import mmread, mmwrite, random_matrix, random_vector
from repro.util.errors import InvalidValue


class TestMatrixMarket:
    def test_roundtrip_file(self, tmp_path):
        A = grb.Matrix.from_dense([[1.5, 0.0], [0.0, -2.25]])
        path = tmp_path / "a.mtx"
        mmwrite(path, A, comment="test matrix")
        B = mmread(path)
        assert (A.to_scipy() != B.to_scipy()).nnz == 0

    def test_roundtrip_stream(self):
        A = grb.Matrix.from_coo([0, 3], [1, 2], [7.0, 8.0], 4, 4)
        buf = io.StringIO()
        mmwrite(buf, A)
        buf.seek(0)
        B = mmread(buf)
        assert B.nrows == 4 and B.nvals == 2
        assert B.extract_element(3, 2) == 8.0

    def test_values_exact(self, tmp_path):
        val = 1.0 / 3.0
        A = grb.Matrix.from_coo([0], [0], [val], 1, 1)
        path = tmp_path / "v.mtx"
        mmwrite(path, A)
        assert mmread(path).extract_element(0, 0) == val

    def test_bad_header(self):
        with pytest.raises(InvalidValue):
            mmread(io.StringIO("not a matrix\n1 1 0\n"))

    def test_truncated_body(self):
        with pytest.raises(InvalidValue):
            mmread(io.StringIO("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"))


class TestRandomGenerators:
    def test_matrix_density(self, rng):
        A = random_matrix(20, 30, 0.1, rng=rng)
        assert A.nvals == round(0.1 * 20 * 30)
        assert A.shape == (20, 30)

    def test_matrix_zero_density(self, rng):
        assert random_matrix(5, 5, 0.0, rng=rng).nvals == 0

    def test_matrix_full_density(self, rng):
        assert random_matrix(4, 4, 1.0, rng=rng).nvals == 16

    def test_matrix_bad_density(self):
        with pytest.raises(InvalidValue):
            random_matrix(3, 3, 1.5)

    def test_vector_density(self, rng):
        v = random_vector(100, 0.25, rng=rng)
        assert v.nvals == 25

    def test_vector_reproducible(self):
        a = random_vector(50, 0.3, rng=np.random.default_rng(7))
        b = random_vector(50, 0.3, rng=np.random.default_rng(7))
        assert a == b
