"""Machine specs and the shared-memory scaling model."""

import numpy as np
import pytest

from repro.hpcg.problem import generate_problem
from repro.perf import (
    ALP_PROFILE,
    ARM,
    REF_PROFILE,
    Placement,
    ScalingModel,
    X86,
    collect_op_stream,
    packed_placement,
    ref_stream_from_alp,
    split_stream,
    table2_rows,
)
from repro.util.errors import InvalidValue


class TestMachineSpecs:
    def test_table2_values(self):
        rows = {r["field"]: r for r in table2_rows()}
        assert rows["CPU"]["x86"] == "Xeon Gold 6238T"
        assert rows["CPU"]["ARM"] == "Kunpeng 920-4826"
        assert rows["attained bandwidth (GB/s)"]["ARM"] == "246.3"
        assert rows["NUMA domains (per socket)"]["ARM"] == "2"

    def test_derived_counts(self):
        assert X86.physical_cores == 44
        assert X86.hardware_threads == 88
        assert ARM.hardware_threads == 96
        assert ARM.cores_per_numa_domain == 24


class TestScalingModel:
    def test_utilisation_monotone(self):
        model = ScalingModel(ARM, REF_PROFILE)
        utils = [model.socket_utilisation(t) for t in (1, 4, 16, 48)]
        assert utils == sorted(utils)
        assert 0 < utils[0] < utils[-1] < 1

    def test_alp_saturates_faster_than_ref(self):
        alp = ScalingModel(ARM, ALP_PROFILE)
        ref = ScalingModel(ARM, REF_PROFILE)
        assert alp.socket_utilisation(8) > ref.socket_utilisation(8)

    def test_numa_penalty_only_past_domain(self):
        ref = ScalingModel(ARM, REF_PROFILE)
        assert ref.numa_factor(24) == 1.0
        assert ref.numa_factor(48) < 1.0

    def test_numa_aware_never_penalised(self):
        alp = ScalingModel(ARM, ALP_PROFILE)
        assert alp.numa_factor(48) == 1.0

    def test_multisocket_interleave_removes_penalty(self):
        ref = ScalingModel(ARM, REF_PROFILE)
        assert ref.numa_factor(48, sockets=2) == 1.0
        assert ref.numa_factor(48, sockets=1) < 1.0

    def test_x86_single_domain_no_penalty(self):
        ref = ScalingModel(X86, REF_PROFILE)
        assert ref.numa_factor(22) == 1.0

    def test_bandwidth_scales_with_sockets(self):
        alp = ScalingModel(ARM, ALP_PROFILE)
        one = alp.effective_bandwidth(Placement(48, 1))
        two = alp.effective_bandwidth(Placement(96, 2))
        assert two == pytest.approx(2 * one)

    def test_time_inverse_of_bandwidth(self):
        alp = ScalingModel(ARM, ALP_PROFILE)
        p = Placement(32, 1)
        assert alp.time_for_bytes(1e9, p) == pytest.approx(
            1e9 / alp.effective_bandwidth(p)
        )

    def test_placement_validation(self):
        with pytest.raises(InvalidValue):
            Placement(0, 1)


class TestPackedPlacement:
    def test_fits_one_socket(self):
        assert packed_placement(ARM, 48).sockets == 1
        assert packed_placement(X86, 22).sockets == 1

    def test_spills_to_two(self):
        assert packed_placement(ARM, 96).sockets == 2
        assert packed_placement(X86, 44).sockets == 2  # physical packing


class TestOpStream:
    def test_labels_present(self, problem8):
        stream = collect_op_stream(problem8, mg_levels=3, iterations=2)
        assert "rbgs@L0" in stream and "rbgs@L2" in stream
        assert "restrict@L0" in stream and "refine@L0" in stream
        assert "spmv" in stream and "dot" in stream
        # coarsest level has no transfer
        assert "restrict@L2" not in stream

    def test_bytes_positive_and_scaling(self, problem8):
        s2 = collect_op_stream(problem8, mg_levels=3, iterations=2)
        s4 = collect_op_stream(problem8, mg_levels=3, iterations=4)
        assert all(v > 0 for v in s2.values())
        # double the iterations ≈ double the bytes (setup-free labels)
        assert s4["rbgs@L0"] == pytest.approx(2 * s2["rbgs@L0"], rel=0.01)

    def test_levels_clamped(self, problem4):
        stream = collect_op_stream(problem4, mg_levels=9, iterations=1)
        assert "rbgs@L2" in stream  # 4 -> 2 -> 1: three levels max

    def test_ref_stream_discount_only_transfers(self, problem8):
        stream = collect_op_stream(problem8, mg_levels=3, iterations=2)
        ref = ref_stream_from_alp(stream)
        assert ref["rbgs@L0"] == stream["rbgs@L0"]
        assert ref["restrict@L0"] < stream["restrict@L0"]
        assert ref["refine@L0"] < stream["refine@L0"]

    def test_split_stream(self):
        stream = {"rbgs@L0": 10.0, "rbgs@L1": 5.0, "dot": 3.0}
        split = split_stream(stream)
        assert split["rbgs"] == {"L0": 10.0, "L1": 5.0}
        assert split["dot"] == {"-": 3.0}
