"""Official-style report rendering."""

import pytest

from repro.hpcg.driver import main, run_hpcg
from repro.hpcg.report import render_report, to_dict


@pytest.fixture(scope="module")
def result():
    return run_hpcg(nx=8, max_iters=10, mg_levels=3)


class TestToDict:
    def test_structure(self, result):
        d = to_dict(result)["HPCG-Benchmark"]
        assert d["Global Problem Dimensions"] == {"nx": 8, "ny": 8, "nz": 8}
        assert d["Linear System Information"]["Number of Equations"] == 512
        assert d["Multigrid Information"]["Number of coarse grid levels"] == 2
        assert d["Validation Testing"]["Result"] == "PASSED"
        assert d["Final Summary"]["HPCG result is"] == "VALID"

    def test_iteration_count(self, result):
        d = to_dict(result)["HPCG-Benchmark"]
        assert d["Iteration Count Information"][
            "Total number of optimized iterations"] == 10

    def test_gflops_positive(self, result):
        d = to_dict(result)["HPCG-Benchmark"]
        assert d["Final Summary"]["GFLOP/s rating of"] > 0
        assert d["GFLOP/s Summary"]["Raw MG"] > 0

    def test_time_summary_consistent(self, result):
        d = to_dict(result)["HPCG-Benchmark"]["Benchmark Time Summary"]
        parts = d["spmv"] + d["dot"] + d["waxpby"] + d["mg"]
        assert parts <= d["Total"] * 1.2  # parts can't wildly exceed total


class TestRender:
    def test_yaml_like_text(self, result):
        text = render_report(result)
        assert "HPCG-Benchmark:" in text
        assert "  Global Problem Dimensions:" in text
        assert "    nx: 8" in text
        assert "GFLOP/s rating of:" in text

    def test_invalid_when_validation_fails(self, result):
        import dataclasses
        from repro.hpcg.symmetry import SymmetryReport
        bad = dataclasses.replace(
            result, symmetry=SymmetryReport(1.0, 1.0, False, False)
        )
        assert "INVALID" in render_report(bad)


class TestCliReport:
    def test_report_flag(self, capsys):
        rc = main(["--nx", "4", "--iters", "2", "--mg-levels", "2",
                   "--report"])
        assert rc == 0
        assert "HPCG-Benchmark:" in capsys.readouterr().out
