"""The locally-executed distributed spmv: halo sufficiency proof."""

import numpy as np
import pytest

from repro.dist.comm import CommTracker
from repro.dist.halo import LocalSpmvExecutor
from repro.dist.partition import Grid3DPartition, bfs_partition, BlockCyclic1D
from repro.hpcg.problem import generate_problem
from repro.util.errors import DimensionMismatch, InvalidValue


@pytest.fixture(scope="module")
def prob():
    return generate_problem(8)


class TestLocalSpmv:
    def test_matches_global_geometric(self, prob, rng):
        A = prob.A.to_scipy()
        part = Grid3DPartition(prob.grid, 4)
        owners = part.owner(np.arange(prob.n))
        ex = LocalSpmvExecutor(A, owners, 4)
        x = rng.standard_normal(prob.n)
        np.testing.assert_array_equal(ex.spmv(x), A @ x)

    def test_matches_global_bfs_partition(self, prob, rng):
        A = prob.A.to_scipy()
        owners = bfs_partition(A.indptr, A.indices, prob.n, 3)
        ex = LocalSpmvExecutor(A, owners, 3)
        x = rng.standard_normal(prob.n)
        np.testing.assert_array_equal(ex.spmv(x), A @ x)

    def test_matches_global_block_cyclic(self, prob, rng):
        """Even the locality-free partition works — it just moves more."""
        A = prob.A.to_scipy()
        owners = BlockCyclic1D(prob.n, 4, block=8).owner(np.arange(prob.n))
        ex = LocalSpmvExecutor(A, owners, 4)
        x = rng.standard_normal(prob.n)
        np.testing.assert_array_equal(ex.spmv(x), A @ x)

    def test_halo_volume_tracked(self, prob, rng):
        A = prob.A.to_scipy()
        part = Grid3DPartition(prob.grid, 2)
        owners = part.owner(np.arange(prob.n))
        tracker = CommTracker(2)
        ex = LocalSpmvExecutor(A, owners, 2, tracker=tracker)
        ex.spmv(rng.standard_normal(prob.n))
        assert tracker.total_bytes == ex.halo_bytes_per_exchange()
        assert tracker.num_syncs == 1

    def test_geometric_moves_less_than_cyclic(self, prob):
        A = prob.A.to_scipy()
        geo = Grid3DPartition(prob.grid, 4).owner(np.arange(prob.n))
        cyc = BlockCyclic1D(prob.n, 4, block=8).owner(np.arange(prob.n))
        ex_geo = LocalSpmvExecutor(A, geo, 4)
        ex_cyc = LocalSpmvExecutor(A, cyc, 4)
        assert ex_geo.halo_bytes_per_exchange() < ex_cyc.halo_bytes_per_exchange()

    def test_local_matrices_are_compressed(self, prob):
        """No node's local matrix sees the full column space."""
        A = prob.A.to_scipy()
        part = Grid3DPartition(prob.grid, 4)
        owners = part.owner(np.arange(prob.n))
        ex = LocalSpmvExecutor(A, owners, 4)
        for node in ex.nodes:
            assert node.local_matrix.shape[1] < prob.n
            assert node.local_matrix.shape[0] == node.rows.size

    def test_single_node_degenerate(self, prob, rng):
        A = prob.A.to_scipy()
        owners = np.zeros(prob.n, dtype=np.int64)
        ex = LocalSpmvExecutor(A, owners, 1)
        x = rng.standard_normal(prob.n)
        np.testing.assert_array_equal(ex.spmv(x), A @ x)
        assert ex.halo_bytes_per_exchange() == 0

    def test_input_validation(self, prob):
        A = prob.A.to_scipy()
        with pytest.raises(DimensionMismatch):
            LocalSpmvExecutor(A, np.zeros(3, dtype=np.int64), 2)
        with pytest.raises(InvalidValue):
            LocalSpmvExecutor(A, np.full(prob.n, 5, dtype=np.int64), 2)
        owners = np.zeros(prob.n, dtype=np.int64)
        ex = LocalSpmvExecutor(A, owners, 1)
        with pytest.raises(DimensionMismatch):
            ex.spmv(np.zeros(3))
