"""The Matrix container: construction, element access, caches."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import graphblas as grb
from repro.graphblas.matrix import Matrix
from repro.util.errors import DimensionMismatch, InvalidValue


def small():
    return Matrix.from_dense([[2.0, 0.0, 1.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0]])


class TestConstruction:
    def test_from_dense_pattern(self):
        A = small()
        assert A.shape == (3, 3) and A.nvals == 5

    def test_from_coo(self):
        A = Matrix.from_coo([0, 1], [1, 0], [2.0, 3.0], 2, 2)
        assert A.extract_element(0, 1) == 2.0
        assert A.extract_element(1, 0) == 3.0
        assert A.extract_element(0, 0) is None

    def test_from_coo_duplicates_plus(self):
        A = Matrix.from_coo([0, 0], [0, 0], [1.0, 2.0], 1, 1,
                            dup_op=grb.ops.plus)
        assert A.extract_element(0, 0) == 3.0

    def test_from_coo_duplicates_max(self):
        A = Matrix.from_coo([0, 0, 0], [0, 0, 0], [5.0, 9.0, 2.0], 1, 1,
                            dup_op=grb.ops.max_)
        assert A.extract_element(0, 0) == 9.0

    def test_from_coo_duplicates_no_op_raises(self):
        with pytest.raises(InvalidValue):
            Matrix.from_coo([0, 0], [0, 0], [1.0, 2.0], 1, 1)

    def test_from_coo_out_of_range(self):
        with pytest.raises(InvalidValue):
            Matrix.from_coo([2], [0], [1.0], 2, 2)

    def test_from_coo_length_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Matrix.from_coo([0, 1], [0], [1.0], 2, 2)

    def test_from_scipy_copies(self):
        src = sp.identity(3, format="csr")
        A = Matrix.from_scipy(src)
        src.data[:] = 99.0
        assert A.extract_element(0, 0) == 1.0

    def test_identity(self):
        eye = Matrix.identity(4)
        assert eye.nvals == 4
        assert all(eye.extract_element(i, i) == 1.0 for i in range(4))

    def test_from_dense_rejects_1d(self):
        with pytest.raises(InvalidValue):
            Matrix.from_dense([1.0, 2.0])

    def test_rectangular(self):
        A = Matrix.from_coo([0, 1], [3, 2], [1.0, 1.0], 2, 5)
        assert A.nrows == 2 and A.ncols == 5


class TestElementAccess:
    def test_extract_absent(self):
        assert small().extract_element(0, 1) is None

    def test_extract_out_of_range(self):
        with pytest.raises(InvalidValue):
            small().extract_element(3, 0)

    def test_set_existing(self):
        A = small()
        A.set_element(0, 0, 9.0)
        assert A.extract_element(0, 0) == 9.0

    def test_set_new_entry(self):
        A = small()
        before = A.nvals
        A.set_element(1, 2, 6.0)
        assert A.extract_element(1, 2) == 6.0
        assert A.nvals == before + 1

    def test_set_out_of_range(self):
        with pytest.raises(InvalidValue):
            small().set_element(0, 9, 1.0)


class TestWholeContainer:
    def test_dup_independent(self):
        A = small()
        B = A.dup()
        B.set_element(0, 0, -1.0)
        assert A.extract_element(0, 0) == 2.0

    def test_transpose(self):
        A = small()
        T = A.transpose()
        assert T.extract_element(0, 2) == 4.0
        assert T.extract_element(2, 0) == 1.0

    def test_diag_values(self):
        d = small().diag()
        np.testing.assert_array_equal(d.to_dense(), [2.0, 3.0, 5.0])

    def test_diag_absent_entries(self):
        A = Matrix.from_coo([0, 1], [1, 0], [1.0, 1.0], 2, 2)
        d = A.diag()
        assert d.nvals == 0

    def test_diag_stored_zero_is_present(self):
        A = Matrix.from_coo([0], [0], [0.0], 2, 2)
        d = A.diag()
        assert d.extract_element(0) == 0.0  # stored zero is an entry
        assert d.extract_element(1) is None

    def test_to_coo_roundtrip(self):
        A = small()
        r, c, v = A.to_coo()
        B = Matrix.from_coo(r, c, v, 3, 3)
        assert (A.to_scipy() != B.to_scipy()).nnz == 0

    def test_to_scipy_copy_isolation(self):
        A = small()
        out = A.to_scipy()
        out.data[:] = 0.0
        assert A.extract_element(0, 0) == 2.0


class TestBackendCaches:
    def test_transposed_cached(self):
        A = small()
        t1 = A._transposed_csr()
        t2 = A._transposed_csr()
        assert t1 is t2

    def test_set_element_invalidates(self):
        A = small()
        t1 = A._transposed_csr()
        A.set_element(0, 0, 42.0)
        t2 = A._transposed_csr()
        assert t1 is not t2
        assert t2[0, 0] == 42.0

    def test_mask_cache_hit(self):
        A = small()
        rows = np.array([0, 2])
        s1 = A._rows_submatrix((1, 0), rows)
        s2 = A._rows_submatrix((1, 0), rows)
        assert s1 is s2

    def test_mask_cache_respects_version_key(self):
        A = small()
        rows = np.array([0, 2])
        s1 = A._rows_submatrix((1, 0), rows)
        s2 = A._rows_submatrix((1, 1), rows)  # same mask id, new version
        assert s1 is not s2

    def test_mask_cache_transpose_separate(self):
        A = small()
        rows = np.array([0])
        plain = A._rows_submatrix((1, 0), rows, transpose=False)
        transposed = A._rows_submatrix((1, 0), rows, transpose=True)
        assert plain.shape == transposed.shape == (1, 3)
        assert (plain != transposed).nnz > 0  # different content for small()

    def test_version_bumps_on_mutation(self):
        A = small()
        v0 = A.version
        A.set_element(0, 0, 1.5)
        assert A.version > v0
