"""Kronecker product, including the stencil-construction identity."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import graphblas as grb


class TestKronecker:
    def test_matches_scipy(self, rng):
        A = grb.Matrix.from_dense(rng.standard_normal((3, 2)))
        B = grb.Matrix.from_dense(rng.standard_normal((2, 4)))
        C = grb.Matrix.identity(1)
        grb.kronecker(C, A, B, grb.ops.times)
        expected = sp.kron(A.to_scipy(), B.to_scipy()).toarray()
        np.testing.assert_allclose(C.to_scipy().toarray(), expected)

    def test_shape(self):
        A = grb.Matrix.identity(3)
        B = grb.Matrix.identity(4)
        C = grb.Matrix.identity(1)
        grb.kronecker(C, A, B, grb.ops.times)
        assert C.shape == (12, 12) and C.nvals == 12

    def test_nonstandard_op(self):
        A = grb.Matrix.from_dense([[1.0, 2.0]])
        B = grb.Matrix.from_dense([[10.0], [20.0]])
        C = grb.Matrix.identity(1)
        grb.kronecker(C, A, B, grb.ops.plus)
        np.testing.assert_array_equal(
            C.to_scipy().toarray(), [[11.0, 12.0], [21.0, 22.0]]
        )

    def test_kronecker_sum_builds_laplacian(self):
        """The 2D 5-point Laplacian is I⊗T + T⊗I — a classic identity the
        HPCG-style operators generalise."""
        m = 4
        rows = list(range(m)) + list(range(m - 1)) + list(range(1, m))
        cols = list(range(m)) + list(range(1, m)) + list(range(m - 1))
        vals = [2.0] * m + [-1.0] * (2 * (m - 1))
        T = sp.csr_matrix((vals, (rows, cols)), shape=(m, m))
        Tg = grb.Matrix.from_scipy(T)
        eye = grb.Matrix.identity(m)
        left = grb.Matrix.identity(1)
        right = grb.Matrix.identity(1)
        grb.kronecker(left, eye, Tg, grb.ops.times)
        grb.kronecker(right, Tg, eye, grb.ops.times)
        out = grb.Matrix.identity(m * m)
        grb.ewise_add_matrix(out, left, right, grb.ops.plus)
        expected = (sp.kron(sp.identity(m), T) + sp.kron(T, sp.identity(m))).toarray()
        np.testing.assert_allclose(out.to_scipy().toarray(), expected)
