"""Descriptors: flags, combination, presets."""

from repro.graphblas import descriptor as d


class TestDescriptor:
    def test_default_all_false(self):
        assert not any(
            (d.default.transpose_matrix, d.default.structural,
             d.default.invert_mask, d.default.replace)
        )

    def test_presets(self):
        assert d.structural.structural
        assert d.transpose_matrix.transpose_matrix
        assert d.invert_mask.invert_mask
        assert d.replace.replace

    def test_or_combines(self):
        combined = d.structural | d.transpose_matrix
        assert combined.structural and combined.transpose_matrix
        assert not combined.replace

    def test_structural_transpose_preset(self):
        assert d.structural_transpose.structural
        assert d.structural_transpose.transpose_matrix

    def test_with_override(self):
        desc = d.structural.with_(replace=True)
        assert desc.structural and desc.replace
        # original untouched (frozen)
        assert not d.structural.replace

    def test_immutable(self):
        import pytest
        with pytest.raises(Exception):
            d.default.structural = True

    def test_or_identity(self):
        assert (d.default | d.structural) == d.structural
