"""Larger end-to-end scenarios and the repetition protocol."""

import numpy as np
import pytest

from repro.hpcg import run_hpcg
from repro.hpcg.problem import generate_problem
from repro.ref import run_ref_hpcg


class TestRepetitions:
    def test_average_and_std(self):
        result = run_hpcg(nx=8, max_iters=5, mg_levels=3,
                          validate_symmetry=False, repetitions=3)
        assert len(result.repetition_seconds) == 3
        assert result.run_seconds == pytest.approx(
            sum(result.repetition_seconds) / 3
        )
        assert result.run_seconds_std >= 0.0

    def test_breakdown_shares_unchanged_by_repetitions(self):
        one = run_hpcg(nx=8, max_iters=5, mg_levels=3,
                       validate_symmetry=False, repetitions=1)
        three = run_hpcg(nx=8, max_iters=5, mg_levels=3,
                         validate_symmetry=False, repetitions=3)
        r1 = sum(r["rbgs"] for r in one.mg_level_breakdown())
        r3 = sum(r["rbgs"] for r in three.mg_level_breakdown())
        assert r3 == pytest.approx(r1, rel=0.3)  # same share, noisy wall-clock
        assert 0 < r3 <= 1.0

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            run_hpcg(nx=4, max_iters=2, mg_levels=2, repetitions=0,
                     validate_symmetry=False)


class TestAtScale:
    def test_24cubed_full_stack(self):
        """A 13.8k-unknown run through validation + 4-level MG."""
        result = run_hpcg(nx=24, max_iters=15, mg_levels=4)
        assert result.symmetry.passed
        # 15 MG-CG iterations contract the residual by ~6 orders here
        assert result.cg.relative_residual < 1e-5
        assert result.gflops > 0
        rbgs_share = sum(r["rbgs"] for r in result.mg_level_breakdown())
        assert rbgs_share > 0.4

    def test_anisotropic_domain(self):
        """A 48x16x8 slab: all machinery works off-cube."""
        problem = generate_problem(48, 16, 8)
        result = run_hpcg(nx=0, problem=problem, max_iters=10, mg_levels=3,
                          validate_symmetry=True)
        assert result.symmetry.passed
        ref = run_ref_hpcg(nx=0, problem=problem, max_iters=10, mg_levels=3)
        np.testing.assert_allclose(result.cg.residuals, ref.cg.residuals,
                                   rtol=1e-12)

    def test_exact_solution_reached_at_scale(self):
        result = run_hpcg(nx=16, max_iters=200, tolerance=1e-12,
                          mg_levels=4, validate_symmetry=False)
        assert result.cg.converged
        np.testing.assert_allclose(
            result.cg.x.to_dense(), np.ones(4096), rtol=1e-8
        )
