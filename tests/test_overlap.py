"""Eager vs. split-phase equivalence: the overlap engine changes
*when* communication is priced, never *what* is computed.

Property-based (hypothesis) suites assert bit-identical results between
``comm_mode="eager"`` and ``comm_mode="overlap"`` on random sparse
problems and random ownerships, plus the stencil problems the paper
actually runs — for the honest executors (SpMV, RBGS sweeps) and for
full CG+MG residual histories on all three simulated backends.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dist import (
    Grid3DPartition,
    Hybrid2DRun,
    HybridALPRun,
    RefDistRun,
    bfs_partition,
)
from repro.dist.bsp import ARM_CLUSTER_NODE, BSPMachine
from repro.dist.comm import CommTracker
from repro.dist.halo import LocalRBGSExecutor, LocalSpmvExecutor
from repro.hpcg.coloring import lattice_coloring
from repro.hpcg.problem import generate_problem
from repro.ref.sgs import RefRBGS

common = settings(max_examples=20,
                  suppress_health_check=[HealthCheck.too_slow],
                  deadline=None)


def _random_system(n: int, seed: int, density: float = 0.15):
    """A random sparse square matrix with a safe diagonal.

    The pattern is symmetrised (like every HPCG operator): greedy
    colouring only yields a Gauss-Seidel-valid colouring — no
    intra-colour reads — on symmetric patterns.
    """
    rng = np.random.default_rng(seed)
    M = sp.random(n, n, density=density, random_state=rng,
                  format="csr", dtype=np.float64)
    A = M + M.T + sp.eye(n, format="csr") * (n + 1.0)
    A = A.tocsr()
    A.sort_indices()
    return A, rng


# --- honest executors on random problems ------------------------------------

class TestExecutorEquivalenceRandom:
    @common
    @given(n=st.integers(4, 40), seed=st.integers(0, 2**32 - 1),
           p=st.integers(1, 5))
    def test_spmv_bit_identical(self, n, seed, p):
        A, rng = _random_system(n, seed)
        owners = rng.integers(0, p, size=n)
        x = rng.standard_normal(n)
        y_eager = LocalSpmvExecutor(A, owners, p,
                                    comm_mode="eager").spmv(x)
        y_over = LocalSpmvExecutor(A, owners, p,
                                   comm_mode="overlap").spmv(x)
        np.testing.assert_array_equal(y_eager, y_over)
        np.testing.assert_array_equal(y_over, A @ x)

    @common
    @given(n=st.integers(4, 32), seed=st.integers(0, 2**32 - 1),
           p=st.integers(1, 4))
    def test_rbgs_smooth_bit_identical(self, n, seed, p):
        # a *valid* colouring (no intra-colour edges) — the same
        # precondition RBGS itself needs for order-independence, and
        # what makes the interior/boundary write order unobservable
        import repro.graphblas as grb
        from repro.hpcg.coloring import greedy_coloring
        A, rng = _random_system(n, seed)
        owners = rng.integers(0, p, size=n)
        colors = greedy_coloring(grb.Matrix.from_scipy(A))
        r = rng.standard_normal(n)
        z0 = rng.standard_normal(n)
        z_eager = z0.copy()
        LocalRBGSExecutor(A, owners, p, colors,
                          comm_mode="eager").smooth(z_eager, r, sweeps=2)
        z_over = z0.copy()
        LocalRBGSExecutor(A, owners, p, colors,
                          comm_mode="overlap").smooth(z_over, r, sweeps=2)
        np.testing.assert_array_equal(z_eager, z_over)

    @common
    @given(n=st.integers(4, 32), seed=st.integers(0, 2**32 - 1),
           p=st.integers(2, 4))
    def test_same_trace_shape_both_modes(self, n, seed, p):
        """Same bytes, same superstep count — only posted flags differ."""
        A, rng = _random_system(n, seed)
        owners = rng.integers(0, p, size=n)
        x = rng.standard_normal(n)
        traces = {}
        for mode in ("eager", "overlap"):
            tracker = CommTracker(p)
            LocalSpmvExecutor(A, owners, p, tracker=tracker,
                              comm_mode=mode).spmv(x)
            traces[mode] = tracker
        assert traces["eager"].num_syncs == traces["overlap"].num_syncs
        assert traces["eager"].total_bytes == traces["overlap"].total_bytes
        assert all(not s.posted for s in traces["eager"].supersteps)
        assert all(s.posted for s in traces["overlap"].supersteps)


# --- honest executors on stencil problems -----------------------------------

class TestExecutorEquivalenceStencil:
    @pytest.fixture(scope="class")
    def stencil(self):
        problem = generate_problem(8)
        A = problem.A.to_scipy()
        colors = lattice_coloring(problem.grid)
        geo = Grid3DPartition(problem.grid, 4).owner(np.arange(problem.n))
        bfs = bfs_partition(A.indptr, A.indices, problem.n, 4)
        return problem, A, colors, {"geo": geo, "bfs": bfs}

    @pytest.mark.parametrize("ownership", ["geo", "bfs"])
    def test_spmv_matches_global(self, stencil, rng, ownership):
        problem, A, _colors, owners = stencil
        x = rng.standard_normal(problem.n)
        y = LocalSpmvExecutor(A, owners[ownership], 4,
                              comm_mode="overlap").spmv(x)
        np.testing.assert_array_equal(y, A @ x)

    @pytest.mark.parametrize("ownership", ["geo", "bfs"])
    def test_rbgs_matches_shared_memory(self, stencil, rng, ownership):
        problem, A, colors, owners = stencil
        r = rng.standard_normal(problem.n)
        z = np.zeros(problem.n)
        LocalRBGSExecutor(A, owners[ownership], 4, colors,
                          comm_mode="overlap").smooth(z, r, sweeps=2)
        z_ref = np.zeros(problem.n)
        RefRBGS(A, colors).smooth(z_ref, r, sweeps=2)
        np.testing.assert_array_equal(z, z_ref)

    def test_interior_rows_really_are_interior(self, stencil):
        """The split is sound: no interior row references a halo col."""
        problem, A, _colors, owners = stencil
        ex = LocalSpmvExecutor(A, owners["geo"], 4, comm_mode="overlap")
        for node, split in zip(ex.nodes, ex._node_splits()):
            col_owner = ex.owners[node.cols]
            sub = node.local_matrix[split.interior_sel, :]
            assert (col_owner[sub.indices] == node.rank).all()

    def test_overlap_work_tagged_on_trace(self, stencil, rng):
        problem, A, colors, owners = stencil
        tracker = CommTracker(4)
        ex = LocalRBGSExecutor(A, owners["geo"], 4, colors,
                               tracker=tracker, comm_mode="overlap")
        z = np.zeros(problem.n)
        ex.sweep(z, rng.standard_normal(problem.n))
        tagged = [s for s in tracker.supersteps if s.overlapped_work > 0]
        # every exchange except the sweep's last has a successor colour
        assert len(tagged) == ex.ncolors - 1


# --- full simulated backends -------------------------------------------------

BACKENDS = [
    pytest.param(RefDistRun, {}, id="ref-3d"),
    pytest.param(RefDistRun, {"partition": "bfs"}, id="ref-bfs"),
    pytest.param(HybridALPRun, {}, id="alp-1d"),
    pytest.param(Hybrid2DRun, {}, id="alp-2d"),
]


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def dist_problem(self):
        return generate_problem(8, 16, 16)

    @pytest.mark.parametrize("cls,kwargs", BACKENDS)
    def test_residuals_bit_identical(self, dist_problem, cls, kwargs):
        eager = cls(dist_problem, nprocs=4, mg_levels=3,
                    comm_mode="eager", **kwargs).run_cg(max_iters=4)
        over = cls(dist_problem, nprocs=4, mg_levels=3,
                   comm_mode="overlap", **kwargs).run_cg(max_iters=4)
        np.testing.assert_array_equal(eager.residuals, over.residuals)

    @pytest.mark.parametrize("cls,kwargs", BACKENDS)
    def test_same_bytes_same_supersteps(self, dist_problem, cls, kwargs):
        eager = cls(dist_problem, nprocs=4, mg_levels=3,
                    comm_mode="eager", **kwargs).run_cg(max_iters=2)
        over = cls(dist_problem, nprocs=4, mg_levels=3,
                   comm_mode="overlap", **kwargs).run_cg(max_iters=2)
        assert eager.comm_bytes == over.comm_bytes
        assert eager.syncs == over.syncs

    @pytest.mark.parametrize("cls,kwargs", BACKENDS)
    def test_overlap_never_slower(self, dist_problem, cls, kwargs):
        eager = cls(dist_problem, nprocs=4, mg_levels=3,
                    comm_mode="eager", **kwargs).run_cg(max_iters=2)
        over = cls(dist_problem, nprocs=4, mg_levels=3,
                   comm_mode="overlap", **kwargs).run_cg(max_iters=2)
        assert over.modelled_seconds <= eager.modelled_seconds
        assert over.exposed_comm_seconds <= over.comm_seconds
        assert eager.hidden_comm_seconds == pytest.approx(0.0)

    def test_ref_backend_hides_wire_time(self, dist_problem):
        """The geometric halos genuinely overlap: hidden time > 0."""
        over = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                          comm_mode="overlap").run_cg(max_iters=2)
        assert over.hidden_comm_seconds > 0.0
        assert over.exposed_comm_seconds < over.comm_seconds

    def test_alp_cannot_hide(self, dist_problem):
        """Opaque block-cyclic containers leave no interior rows: the
        allgather stays fully exposed — the paper's §VI point."""
        over = HybridALPRun(dist_problem, nprocs=4, mg_levels=3,
                            comm_mode="overlap").run_cg(max_iters=2)
        assert over.hidden_comm_seconds == pytest.approx(0.0)

    def test_overlap_efficiency_knob(self, dist_problem):
        full = RefDistRun(dist_problem, nprocs=4, mg_levels=2,
                          comm_mode="overlap").run_cg(max_iters=2)
        none = RefDistRun(dist_problem, nprocs=4, mg_levels=2,
                          comm_mode="overlap",
                          overlap_efficiency=0.0).run_cg(max_iters=2)
        eager = RefDistRun(dist_problem, nprocs=4, mg_levels=2,
                           comm_mode="eager").run_cg(max_iters=2)
        assert none.modelled_seconds == pytest.approx(eager.modelled_seconds)
        assert full.modelled_seconds < none.modelled_seconds

    def test_efficiency_override_consistent_with_trace_helpers(
            self, dist_problem):
        """The override is folded into run.machine, so machine-based
        trace helpers agree with the run's own accounting."""
        from repro.perf.model import overlap_savings
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=2,
                         comm_mode="overlap", overlap_efficiency=0.0)
        assert run.machine.overlap_efficiency == 0.0
        res = run.run_cg(max_iters=2)
        assert res.hidden_comm_seconds == pytest.approx(0.0)
        assert overlap_savings(run.machine, res.tracker) == pytest.approx(0.0)

    def test_exposed_comm_breakdown(self, dist_problem):
        over = RefDistRun(dist_problem, nprocs=4, mg_levels=3,
                          comm_mode="overlap").run_cg(max_iters=2)
        rows = over.exposed_comm_breakdown()
        assert len(rows) == 3
        for row in rows:
            assert row["exposed"] <= row["full"]
            assert row["hidden"] == pytest.approx(
                row["full"] - row["exposed"])
        assert sum(r["hidden"] for r in rows) > 0.0

    def test_env_force_applies(self, dist_problem, monkeypatch):
        monkeypatch.setenv("REPRO_OVERLAP", "1")
        run = RefDistRun(dist_problem, nprocs=4, mg_levels=2)
        assert run.comm_mode == "overlap"
        res = run.run_cg(max_iters=1)
        assert res.comm_mode == "overlap"
        assert "[overlap:" in res.summary()


# --- the perf layer ----------------------------------------------------------

class TestPerfReporting:
    def test_comm_overlap_stream(self):
        from repro.perf.model import comm_overlap_stream, overlap_savings
        m = BSPMachine("toy", 1000.0, 100.0, 1.0)
        t = CommTracker(2)
        t.send(0, 1, 100, label="halo")
        t.wait(t.post(label="halo").overlap(500.0))
        t.send(1, 0, 100, label="dot")
        t.sync(label="dot")
        stream = comm_overlap_stream(m, t)
        assert stream["halo"]["full"] == pytest.approx(2.0)
        assert stream["halo"]["hidden"] == pytest.approx(0.5)
        assert stream["dot"]["hidden"] == pytest.approx(0.0)
        assert overlap_savings(m, t) == pytest.approx(0.5 / 4.0)

    def test_overlap_savings_empty_trace(self):
        from repro.perf.model import overlap_savings
        assert overlap_savings(ARM_CLUSTER_NODE, CommTracker(2)) == 0.0
