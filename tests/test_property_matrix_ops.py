"""Property-based tests for the matrix-level operations and select."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import graphblas as grb
from repro.graphblas import selectops

common = settings(max_examples=20,
                  suppress_health_check=[HealthCheck.too_slow], deadline=None)


@st.composite
def square_matrix(draw, max_n=8):
    n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, n * n))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=nnz, max_size=nnz, unique=True,
    ))
    vals = draw(st.lists(st.floats(-50, 50, allow_nan=False),
                         min_size=len(cells), max_size=len(cells)))
    rows = np.array([c[0] for c in cells], dtype=np.int64)
    cols = np.array([c[1] for c in cells], dtype=np.int64)
    return grb.Matrix.from_coo(rows, cols, np.array(vals), n, n)


class TestSelectProperties:
    @common
    @given(square_matrix())
    def test_tril_triu_diag_partition(self, A):
        """Strict-lower + diagonal + strict-upper recovers A exactly."""
        total = 0
        for op, thunk in ((selectops.tril, -1), (selectops.diag, 0),
                          (selectops.triu, 1)):
            C = grb.Matrix.identity(A.nrows)
            grb.select(C, op, A, thunk=thunk)
            total += C.nvals
        assert total == A.nvals

    @common
    @given(square_matrix(), st.floats(-50, 50, allow_nan=False))
    def test_value_split_partition(self, A, thunk):
        """valuegt + its complement (le via not-gt) partitions entries."""
        gt = grb.Matrix.identity(A.nrows)
        grb.select(gt, selectops.valuegt, A, thunk=thunk)
        le = grb.Matrix.identity(A.nrows)
        le_op = grb.IndexUnaryOp("le", lambda v, i, j, k: ~(v > k))
        grb.select(le, le_op, A, thunk=thunk)
        assert gt.nvals + le.nvals == A.nvals

    @common
    @given(square_matrix())
    def test_select_idempotent(self, A):
        C1 = grb.Matrix.identity(A.nrows)
        grb.select(C1, selectops.tril, A)
        C2 = grb.Matrix.identity(A.nrows)
        grb.select(C2, selectops.tril, C1)
        assert (C1.to_scipy() != C2.to_scipy()).nnz == 0


class TestMatrixOpProperties:
    @common
    @given(square_matrix(), square_matrix())
    def test_ewise_add_commutative(self, A, B):
        if A.shape != B.shape:
            return
        C1 = grb.Matrix.identity(A.nrows)
        grb.ewise_add_matrix(C1, A, B, grb.ops.plus)
        C2 = grb.Matrix.identity(A.nrows)
        grb.ewise_add_matrix(C2, B, A, grb.ops.plus)
        np.testing.assert_allclose(
            C1.to_scipy().toarray(), C2.to_scipy().toarray(),
            rtol=1e-12, atol=1e-12,
        )

    @common
    @given(square_matrix())
    def test_transpose_involution(self, A):
        C = grb.Matrix.identity(A.ncols)
        grb.transpose_into(C, A)
        D = grb.Matrix.identity(A.nrows)
        grb.transpose_into(D, C)
        assert (A.to_scipy() != D.to_scipy()).nnz == 0

    @common
    @given(square_matrix())
    def test_reduce_rows_matches_matrix_reduce(self, A):
        w = grb.Vector.sparse(A.nrows)
        grb.reduce_rows(w, A, grb.plus_monoid)
        assert grb.reduce(w, grb.plus_monoid) == pytest.approx(
            grb.reduce_matrix(A, grb.plus_monoid), abs=1e-9
        )

    @common
    @given(square_matrix())
    def test_ewise_mult_with_self_squares_values(self, A):
        C = grb.Matrix.identity(A.nrows)
        grb.ewise_mult_matrix(C, A, A, grb.ops.times)
        assert C.nvals == A.nvals
        _, _, va = A.to_coo()
        _, _, vc = C.to_coo()
        np.testing.assert_allclose(vc, va ** 2)

    @common
    @given(square_matrix())
    def test_apply_matrix_preserves_pattern(self, A):
        C = grb.Matrix.identity(A.nrows)
        grb.apply_matrix(C, grb.ops.ainv, A)
        ra, ca, _ = A.to_coo()
        rc, cc, _ = C.to_coo()
        np.testing.assert_array_equal(ra, rc)
        np.testing.assert_array_equal(ca, cc)
