"""Shared fixtures: small generated problems, cached per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hpcg.problem import generate_problem


@pytest.fixture(scope="session")
def problem8():
    """An 8x8x8 HPCG problem (n=512), reference b-style."""
    return generate_problem(8)


@pytest.fixture(scope="session")
def problem4():
    """A 4x4x4 HPCG problem (n=64)."""
    return generate_problem(4)


@pytest.fixture(scope="session")
def problem16():
    """A 16x16x16 HPCG problem (n=4096) for integration tests."""
    return generate_problem(16)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
