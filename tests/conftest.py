"""Shared fixtures: small generated problems, cached per session."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.hpcg.problem import generate_problem


@pytest.fixture(scope="session", autouse=True)
def _isolated_tune_cache(tmp_path_factory):
    """Keep tier-1 hermetic: a developer's cached machine profile must
    not leak measured rates (substrate choices, overlap efficiencies)
    into the suite.  An explicit ``REPRO_TUNE_CACHE`` is honoured — the
    CI tune leg measures a profile on purpose and runs tests under it.
    """
    from repro.tune import cache as tune_cache

    if os.environ.get(tune_cache.ENV_VAR, "").strip():
        yield
        return
    os.environ[tune_cache.ENV_VAR] = str(tmp_path_factory.mktemp("tune-cache"))
    tune_cache.invalidate()
    try:
        yield
    finally:
        os.environ.pop(tune_cache.ENV_VAR, None)
        tune_cache.invalidate()


@pytest.fixture(scope="session")
def problem8():
    """An 8x8x8 HPCG problem (n=512), reference b-style."""
    return generate_problem(8)


@pytest.fixture(scope="session")
def problem4():
    """A 4x4x4 HPCG problem (n=64)."""
    return generate_problem(4)


@pytest.fixture(scope="session")
def problem16():
    """A 16x16x16 HPCG problem (n=4096) for integration tests."""
    return generate_problem(16)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
