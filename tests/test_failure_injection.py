"""Failure injection: broken inputs are rejected, and injected machine
faults (stragglers, heterogeneous speeds, message loss, node crashes)
are deterministic, priced honestly, and recovered from exactly."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import graphblas as grb
from repro.dist import (
    Checkpoint,
    Crash,
    FaultInjector,
    FaultPlan,
    Hybrid2DRun,
    HybridALPRun,
    MessageLoss,
    NodeCrash,
    RefDistRun,
    Straggler,
)
from repro.hpcg.cg import pcg
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.problem import generate_problem
from repro.hpcg.smoothers import RBGSSmoother
from repro.hpcg.symmetry import validate
from repro.ref.sgs import RefRBGS, RefSymGS
from repro.util.errors import InvalidValue

ALL_BACKENDS = (RefDistRun, HybridALPRun, Hybrid2DRun)


@pytest.fixture(scope="module")
def dist_problem():
    return generate_problem(8, 16, 16)


def _run(cls, problem, faults=None, max_iters=5, **kw):
    return cls(problem, 4, mg_levels=3, faults=faults,
               **kw).run_cg(max_iters=max_iters)


class TestBrokenOperators:
    def test_zero_diagonal_rejected_by_ref_smoothers(self):
        import scipy.sparse as sp
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(InvalidValue):
            RefSymGS(A)
        with pytest.raises(InvalidValue):
            RefRBGS(A, np.array([0, 1]))

    def test_missing_diagonal_detected_at_generation(self, monkeypatch):
        """If stencil assembly lost the diagonal, generation must fail."""
        import repro.hpcg.problem as problem_mod

        real = problem_mod.stencil_coo

        def broken(grid, stencil="27pt"):
            rows, cols, vals = real(grid, stencil)
            off = rows != cols
            return rows[off], cols[off], vals[off]

        monkeypatch.setattr(problem_mod, "stencil_coo", broken)
        with pytest.raises(InvalidValue):
            problem_mod.generate_problem(4)

    def test_asymmetric_operator_fails_validation(self):
        problem = generate_problem(4)
        # break symmetry in one entry
        A = problem.A.dup()
        rows, cols, _ = A.to_coo()
        off = np.flatnonzero(rows != cols)[0]
        A.set_element(int(rows[off]), int(cols[off]), 99.0)
        report = validate(A)
        assert not report.passed

    def test_invalid_coloring_breaks_gs_ordering(self):
        """A colouring that puts dependent rows in one class no longer
        reproduces sequential GS — the validator must catch it before a
        smoother is built from it."""
        from repro.hpcg.coloring import validate_coloring
        problem = generate_problem(4)
        bad = np.zeros(problem.n, dtype=np.int64)
        assert not validate_coloring(problem.A, bad)


class TestNumericalEdgeCases:
    def test_nan_rhs_propagates_not_hangs(self):
        problem = generate_problem(4)
        b = grb.Vector.dense(problem.n, np.nan)
        x = problem.x0.dup()
        res = pcg(problem.A, b, x, max_iters=3)
        assert np.isnan(res.normr) or np.isnan(res.residuals[-1])

    def test_huge_values_no_overflow_crash(self):
        import warnings
        problem = generate_problem(4)
        b = grb.Vector.dense(problem.n, 1e300)
        x = problem.x0.dup()
        with warnings.catch_warnings():
            # the norm of a 1e300-scaled residual overflows to inf by
            # design; the solver must keep going, not crash
            warnings.simplefilter("ignore", RuntimeWarning)
            res = pcg(problem.A, b, x, max_iters=5)
        assert res.iterations == 5  # ran to completion

    def test_zero_rhs_converges_to_zero(self):
        problem = generate_problem(4)
        b = grb.Vector.dense(problem.n, 0.0)
        x = problem.x0.dup()
        res = pcg(problem.A, b, x, max_iters=5, tolerance=1e-10)
        assert res.converged and res.iterations == 0
        np.testing.assert_array_equal(x.to_dense(), np.zeros(problem.n))

    def test_smoother_with_wrong_mask_count_still_valid(self):
        """Fewer colour classes (a coarser partition that is still a
        valid colouring... it is NOT for the stencil) — the smoother runs
        but symmetry validation exposes the broken Gauss-Seidel order is
        *not* exposed, since any colour partition yields a symmetric
        smoother; what breaks is convergence quality, checked here."""
        problem = generate_problem(8)
        good = color_masks(lattice_coloring(problem.grid))
        # a deliberately bad "colouring": one class with everything
        bad_mask = grb.Vector.from_coo(
            np.arange(problem.n), np.ones(problem.n, dtype=bool),
            problem.n, dtype=bool,
        )
        rng = np.random.default_rng(0)
        r = grb.Vector.from_dense(rng.standard_normal(problem.n))
        A = problem.A.to_scipy()

        z_good = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, good).smooth(z_good, r)
        res_good = np.linalg.norm(r.to_dense() - A @ z_good.to_dense())

        z_bad = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, [bad_mask]).smooth(z_bad, r)
        res_bad = np.linalg.norm(r.to_dense() - A @ z_bad.to_dense())
        # one-class "RBGS" degenerates to Jacobi: measurably weaker
        assert res_good < res_bad


class TestGoldenRegression:
    """Pin exact end-to-end numbers so silent numerical drift fails CI."""

    def test_residual_history_8cubed(self):
        problem = generate_problem(8)
        precond = MGPreconditioner(build_hierarchy(problem, levels=3))
        x = problem.x0.dup()
        res = pcg(problem.A, problem.b, x, preconditioner=precond,
                  max_iters=5)
        # golden values from the initial validated implementation:
        # normr0 = ||b|| = ||A @ 1|| for the 8^3 reference problem
        assert res.normr0 == pytest.approx(191.2694434560837, rel=1e-12)
        assert res.residuals[1] == pytest.approx(41.74241308287508, rel=1e-9)
        assert res.residuals[2] == pytest.approx(7.0594471115977715, rel=1e-9)
        ratios = np.array(res.residuals[1:]) / np.array(res.residuals[:-1])
        # MG-preconditioned CG contracts fast at every step here
        assert (ratios < 0.25).all()

    def test_iteration_counts_stable(self):
        problem = generate_problem(8)
        x = problem.x0.dup()
        plain = pcg(problem.A, problem.b, x, max_iters=200, tolerance=1e-8)
        precond = MGPreconditioner(build_hierarchy(problem, levels=3))
        x2 = problem.x0.dup()
        mg = pcg(problem.A, problem.b, x2, preconditioner=precond,
                 max_iters=200, tolerance=1e-8)
        assert plain.iterations == 12
        assert mg.iterations == 7


class TestFaultPlanSchema:
    def test_component_validation(self):
        with pytest.raises(InvalidValue):
            Straggler(node=0, factor=0.5)
        with pytest.raises(InvalidValue):
            Straggler(node=-1, factor=2.0)
        with pytest.raises(InvalidValue):
            Straggler(node=0, factor=2.0, start_superstep=5, end_superstep=5)
        with pytest.raises(InvalidValue):
            MessageLoss(rate=1.0)
        with pytest.raises(InvalidValue):
            MessageLoss(rate=0.1, max_retries=0)
        with pytest.raises(InvalidValue):
            Crash(node=0, superstep=-1)
        with pytest.raises(InvalidValue):
            Checkpoint(interval=0)
        with pytest.raises(InvalidValue):
            FaultPlan(node_speeds={0: 0.0})

    def test_unknown_keys_rejected(self):
        with pytest.raises(InvalidValue, match="unknown key"):
            FaultPlan.from_dict({"seed": 1, "stragler": []})
        with pytest.raises(InvalidValue, match="unknown key"):
            FaultPlan.from_dict({"crashes": [{"node": 0, "when": 3}]})

    def test_bools_are_not_numbers(self):
        with pytest.raises(InvalidValue):
            FaultPlan.from_dict({"seed": True})
        with pytest.raises(InvalidValue):
            FaultPlan.from_dict(
                {"stragglers": [{"node": 0, "factor": True}]})

    def test_round_trip(self):
        plan = FaultPlan(
            seed=42,
            stragglers=(Straggler(1, 3.0, 10, 200),),
            node_speeds={0: 0.5, 2: 0.75},
            message_loss=MessageLoss(rate=0.2, max_retries=4, backoff=1e-5),
            crashes=(Crash(3, 500),),
            checkpoint=Checkpoint(interval=2),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_errors_become_invalid_value(self, tmp_path):
        with pytest.raises(InvalidValue, match="cannot read"):
            FaultPlan.from_json(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(InvalidValue, match="not valid JSON"):
            FaultPlan.from_json(str(bad))

    def test_validate_for_ranges_and_survivors(self):
        FaultPlan(crashes=(Crash(1, 5),)).validate_for(4)
        with pytest.raises(InvalidValue, match="out of range"):
            FaultPlan(stragglers=(Straggler(4, 2.0),)).validate_for(4)
        with pytest.raises(InvalidValue, match="out of range"):
            FaultPlan(node_speeds={7: 0.5}).validate_for(4)
        with pytest.raises(InvalidValue, match="no survivors"):
            FaultPlan(crashes=tuple(
                Crash(i, 10) for i in range(4))).validate_for(4)

    def test_speeds_from_profiles_round_robin(self):
        profiles = [SimpleNamespace(triad_bandwidth=20e9),
                    SimpleNamespace(triad_bandwidth=10e9)]
        speeds = FaultPlan.speeds_from_profiles(profiles, 4)
        assert speeds == {0: 1.0, 1: 0.5, 2: 1.0, 3: 0.5}
        with pytest.raises(InvalidValue):
            FaultPlan.speeds_from_profiles([], 4)

    def test_empty_plan_is_inactive(self):
        assert not FaultPlan().active()
        assert FaultPlan(checkpoint=Checkpoint(1)).active()


class TestFaultFreeBitIdentity:
    """An inactive plan must leave the engine on the exact clean path."""

    @pytest.mark.parametrize("cls", ALL_BACKENDS)
    def test_empty_plan_bit_identical(self, dist_problem, cls):
        clean = _run(cls, dist_problem, faults=None)
        empty = _run(cls, dist_problem, faults=FaultPlan(seed=123))
        assert clean.residuals == empty.residuals
        assert clean.modelled_seconds == empty.modelled_seconds
        assert clean.comm_bytes == empty.comm_bytes
        assert empty.resilience is None


class TestSeededDeterminism:
    def test_same_seed_same_run(self, dist_problem):
        plan = FaultPlan(
            seed=11,
            stragglers=(Straggler(0, 2.5, 50, 300),),
            message_loss=MessageLoss(rate=0.3, max_retries=3),
        )
        a = _run(RefDistRun, dist_problem, faults=plan)
        b = _run(RefDistRun, dist_problem, faults=plan)
        assert a.residuals == b.residuals
        assert a.modelled_seconds == b.modelled_seconds
        assert a.resilience["events"] == b.resilience["events"]
        assert a.resilience["exchange_retries"] \
            == b.resilience["exchange_retries"]

    def test_different_seed_different_losses(self, dist_problem):
        def retries(seed):
            plan = FaultPlan(seed=seed,
                             message_loss=MessageLoss(rate=0.4))
            return _run(RefDistRun, dist_problem,
                        faults=plan).resilience["exchange_retries"]

        assert retries(1) != retries(2)


class TestDegradedButCorrect:
    """Faults slow the modelled clock but never touch the numerics."""

    def test_straggler_prices_but_preserves_residuals(self, dist_problem):
        clean = _run(RefDistRun, dist_problem)
        slow = _run(RefDistRun, dist_problem, faults=FaultPlan(
            stragglers=(Straggler(1, 4.0),)))
        assert slow.residuals == clean.residuals
        assert slow.modelled_seconds > clean.modelled_seconds
        assert slow.resilience["injected"].get("straggler", 0) > 0

    def test_transient_cheaper_than_permanent(self, dist_problem):
        transient = _run(RefDistRun, dist_problem, faults=FaultPlan(
            stragglers=(Straggler(1, 4.0, 0, 100),)))
        permanent = _run(RefDistRun, dist_problem, faults=FaultPlan(
            stragglers=(Straggler(1, 4.0),)))
        assert transient.modelled_seconds < permanent.modelled_seconds
        assert transient.residuals == permanent.residuals

    def test_heterogeneous_speeds(self, dist_problem):
        clean = _run(HybridALPRun, dist_problem)
        hetero = _run(HybridALPRun, dist_problem, faults=FaultPlan(
            node_speeds={1: 0.5}))
        assert hetero.residuals == clean.residuals
        assert hetero.modelled_seconds > clean.modelled_seconds

    def test_message_loss_retries_priced(self, dist_problem):
        clean = _run(RefDistRun, dist_problem)
        lossy = _run(RefDistRun, dist_problem, faults=FaultPlan(
            seed=3, message_loss=MessageLoss(rate=0.5, max_retries=4)))
        assert lossy.residuals == clean.residuals
        assert lossy.resilience["exchange_retries"] > 0
        assert lossy.modelled_seconds > clean.modelled_seconds
        # retries are real supersteps pointing back at the original
        retry_steps = [s for s in lossy.tracker.supersteps
                       if s.retry_of is not None]
        assert len(retry_steps) == lossy.resilience["exchange_retries"]
        assert lossy.syncs > clean.syncs


class TestCrashRecovery:
    """Checkpoint/restart on every backend: the survivor run must land
    on exactly the clean residual history, at an honestly higher cost."""

    PLAN = FaultPlan(seed=7, crashes=(Crash(1, 400),),
                     checkpoint=Checkpoint(interval=2))

    @pytest.mark.parametrize("cls", ALL_BACKENDS)
    def test_crash_recovers_exactly(self, dist_problem, cls):
        clean = _run(cls, dist_problem)
        faulted = _run(cls, dist_problem, faults=self.PLAN)
        assert faulted.residuals == clean.residuals
        assert faulted.modelled_seconds > clean.modelled_seconds
        r = faulted.resilience
        assert r["recoveries"] == 1
        assert r["initial_nprocs"] == 4
        assert r["final_nprocs"] < 4
        assert r["checkpoints"] >= 1
        assert r["checkpoint_seconds"] > 0
        assert r["reexecuted_iterations"] >= 0
        kinds = {e["kind"] for e in r["events"]}
        assert {"crash", "checkpoint", "recovery"} <= kinds
        assert faulted.nprocs == r["final_nprocs"]
        assert "[faults:" in faulted.summary()

    def test_crash_without_checkpoint_restarts(self, dist_problem):
        clean = _run(RefDistRun, dist_problem)
        faulted = _run(RefDistRun, dist_problem, faults=FaultPlan(
            seed=7, crashes=(Crash(1, 400),)))
        assert faulted.residuals == clean.residuals
        r = faulted.resilience
        assert r["recoveries"] == 1
        assert r["checkpoints"] == 0
        # no snapshot to roll back to: every finished iteration re-runs
        assert r["reexecuted_iterations"] > 0
        assert faulted.modelled_seconds > clean.modelled_seconds

    def test_checkpoint_only_plan_adds_overhead(self, dist_problem):
        clean = _run(RefDistRun, dist_problem)
        ckpt = _run(RefDistRun, dist_problem, faults=FaultPlan(
            checkpoint=Checkpoint(interval=1)))
        assert ckpt.residuals == clean.residuals
        assert ckpt.modelled_seconds > clean.modelled_seconds
        assert ckpt.resilience["checkpoints"] == 4
        assert ckpt.resilience["recoveries"] == 0

    def test_injector_crash_bookkeeping(self):
        plan = FaultPlan(crashes=(Crash(2, 5),))
        inj = FaultInjector(plan, 4)
        for _ in range(5):
            step = inj.begin_superstep()
            inj.check_crash(step)
        step = inj.begin_superstep()
        with pytest.raises(NodeCrash) as exc:
            inj.check_crash(step)
        assert exc.value.node == 2
        assert inj.alive_count == 3
        assert 2 not in inj.alive
