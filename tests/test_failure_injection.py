"""Failure injection: the stack must reject or surface broken inputs."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.hpcg.cg import pcg
from repro.hpcg.coloring import color_masks, lattice_coloring
from repro.hpcg.multigrid import MGPreconditioner, build_hierarchy
from repro.hpcg.problem import generate_problem
from repro.hpcg.smoothers import RBGSSmoother
from repro.hpcg.symmetry import validate
from repro.ref.sgs import RefRBGS, RefSymGS
from repro.util.errors import InvalidValue


class TestBrokenOperators:
    def test_zero_diagonal_rejected_by_ref_smoothers(self):
        import scipy.sparse as sp
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(InvalidValue):
            RefSymGS(A)
        with pytest.raises(InvalidValue):
            RefRBGS(A, np.array([0, 1]))

    def test_missing_diagonal_detected_at_generation(self, monkeypatch):
        """If stencil assembly lost the diagonal, generation must fail."""
        import repro.hpcg.problem as problem_mod

        real = problem_mod.stencil_coo

        def broken(grid, stencil="27pt"):
            rows, cols, vals = real(grid, stencil)
            off = rows != cols
            return rows[off], cols[off], vals[off]

        monkeypatch.setattr(problem_mod, "stencil_coo", broken)
        with pytest.raises(InvalidValue):
            problem_mod.generate_problem(4)

    def test_asymmetric_operator_fails_validation(self):
        problem = generate_problem(4)
        # break symmetry in one entry
        A = problem.A.dup()
        rows, cols, _ = A.to_coo()
        off = np.flatnonzero(rows != cols)[0]
        A.set_element(int(rows[off]), int(cols[off]), 99.0)
        report = validate(A)
        assert not report.passed

    def test_invalid_coloring_breaks_gs_ordering(self):
        """A colouring that puts dependent rows in one class no longer
        reproduces sequential GS — the validator must catch it before a
        smoother is built from it."""
        from repro.hpcg.coloring import validate_coloring
        problem = generate_problem(4)
        bad = np.zeros(problem.n, dtype=np.int64)
        assert not validate_coloring(problem.A, bad)


class TestNumericalEdgeCases:
    def test_nan_rhs_propagates_not_hangs(self):
        problem = generate_problem(4)
        b = grb.Vector.dense(problem.n, np.nan)
        x = problem.x0.dup()
        res = pcg(problem.A, b, x, max_iters=3)
        assert np.isnan(res.normr) or np.isnan(res.residuals[-1])

    def test_huge_values_no_overflow_crash(self):
        import warnings
        problem = generate_problem(4)
        b = grb.Vector.dense(problem.n, 1e300)
        x = problem.x0.dup()
        with warnings.catch_warnings():
            # the norm of a 1e300-scaled residual overflows to inf by
            # design; the solver must keep going, not crash
            warnings.simplefilter("ignore", RuntimeWarning)
            res = pcg(problem.A, b, x, max_iters=5)
        assert res.iterations == 5  # ran to completion

    def test_zero_rhs_converges_to_zero(self):
        problem = generate_problem(4)
        b = grb.Vector.dense(problem.n, 0.0)
        x = problem.x0.dup()
        res = pcg(problem.A, b, x, max_iters=5, tolerance=1e-10)
        assert res.converged and res.iterations == 0
        np.testing.assert_array_equal(x.to_dense(), np.zeros(problem.n))

    def test_smoother_with_wrong_mask_count_still_valid(self):
        """Fewer colour classes (a coarser partition that is still a
        valid colouring... it is NOT for the stencil) — the smoother runs
        but symmetry validation exposes the broken Gauss-Seidel order is
        *not* exposed, since any colour partition yields a symmetric
        smoother; what breaks is convergence quality, checked here."""
        problem = generate_problem(8)
        good = color_masks(lattice_coloring(problem.grid))
        # a deliberately bad "colouring": one class with everything
        bad_mask = grb.Vector.from_coo(
            np.arange(problem.n), np.ones(problem.n, dtype=bool),
            problem.n, dtype=bool,
        )
        rng = np.random.default_rng(0)
        r = grb.Vector.from_dense(rng.standard_normal(problem.n))
        A = problem.A.to_scipy()

        z_good = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, good).smooth(z_good, r)
        res_good = np.linalg.norm(r.to_dense() - A @ z_good.to_dense())

        z_bad = grb.Vector.dense(problem.n, 0.0)
        RBGSSmoother(problem.A, problem.A_diag, [bad_mask]).smooth(z_bad, r)
        res_bad = np.linalg.norm(r.to_dense() - A @ z_bad.to_dense())
        # one-class "RBGS" degenerates to Jacobi: measurably weaker
        assert res_good < res_bad


class TestGoldenRegression:
    """Pin exact end-to-end numbers so silent numerical drift fails CI."""

    def test_residual_history_8cubed(self):
        problem = generate_problem(8)
        precond = MGPreconditioner(build_hierarchy(problem, levels=3))
        x = problem.x0.dup()
        res = pcg(problem.A, problem.b, x, preconditioner=precond,
                  max_iters=5)
        # golden values from the initial validated implementation:
        # normr0 = ||b|| = ||A @ 1|| for the 8^3 reference problem
        assert res.normr0 == pytest.approx(191.2694434560837, rel=1e-12)
        assert res.residuals[1] == pytest.approx(41.74241308287508, rel=1e-9)
        assert res.residuals[2] == pytest.approx(7.0594471115977715, rel=1e-9)
        ratios = np.array(res.residuals[1:]) / np.array(res.residuals[:-1])
        # MG-preconditioned CG contracts fast at every step here
        assert (ratios < 0.25).all()

    def test_iteration_counts_stable(self):
        problem = generate_problem(8)
        x = problem.x0.dup()
        plain = pcg(problem.A, problem.b, x, max_iters=200, tolerance=1e-8)
        precond = MGPreconditioner(build_hierarchy(problem, levels=3))
        x2 = problem.x0.dup()
        mg = pcg(problem.A, problem.b, x2, preconditioner=precond,
                 max_iters=200, tolerance=1e-8)
        assert plain.iterations == 12
        assert mg.iterations == 7
