"""Jones-Plassmann parallel colouring (GraphBLAS-expressed)."""

import numpy as np
import pytest

from repro import graphblas as grb
from repro.graphblas.io import random_matrix
from repro.hpcg.coloring import (
    greedy_coloring,
    jones_plassmann_coloring,
    num_colors,
    validate_coloring,
)
from repro.hpcg.problem import generate_problem
from repro.util.errors import InvalidValue


class TestJonesPlassmann:
    def test_valid_on_hpcg(self, problem8):
        colors = jones_plassmann_coloring(problem8.A, seed=1)
        assert validate_coloring(problem8.A, colors)

    def test_color_count_reasonable_on_hpcg(self, problem8):
        """JP is randomised; it may use a few more colours than greedy's
        optimal 8 but stays within the max-degree+1 bound (28)."""
        colors = jones_plassmann_coloring(problem8.A, seed=2)
        assert 8 <= num_colors(colors) <= 28

    def test_valid_on_7pt(self):
        problem = generate_problem(6, stencil="7pt")
        colors = jones_plassmann_coloring(problem.A, seed=0)
        assert validate_coloring(problem.A, colors)

    def test_valid_on_random_symmetric(self, rng):
        M = random_matrix(30, 30, 0.15, rng=rng)
        S = grb.Matrix.from_scipy(M.to_scipy() + M.to_scipy().T)
        colors = jones_plassmann_coloring(S, seed=3)
        assert validate_coloring(S, colors)

    def test_deterministic_per_seed(self, problem4):
        a = jones_plassmann_coloring(problem4.A, seed=7)
        b = jones_plassmann_coloring(problem4.A, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_both_valid(self, problem4):
        for seed in range(4):
            colors = jones_plassmann_coloring(problem4.A, seed=seed)
            assert validate_coloring(problem4.A, colors)

    def test_diagonal_only_one_round(self):
        eye = grb.Matrix.identity(6)
        colors = jones_plassmann_coloring(eye, seed=0)
        assert num_colors(colors) == 1

    def test_round_limit_enforced(self, problem8):
        with pytest.raises(InvalidValue):
            jones_plassmann_coloring(problem8.A, seed=0, max_rounds=1)

    def test_requires_square(self):
        with pytest.raises(InvalidValue):
            jones_plassmann_coloring(
                grb.Matrix.from_coo([0], [1], [1.0], 1, 2)
            )

    def test_usable_by_smoother(self, problem8, rng):
        """A JP colouring drives RBGS just like greedy's."""
        from repro.hpcg.coloring import color_masks
        from repro.hpcg.smoothers import RBGSSmoother
        colors = jones_plassmann_coloring(problem8.A, seed=5)
        smoother = RBGSSmoother(problem8.A, problem8.A_diag,
                                color_masks(colors))
        r = grb.Vector.from_dense(rng.standard_normal(problem8.n))
        z = grb.Vector.dense(problem8.n, 0.0)
        smoother.smooth(z, r)
        A = problem8.A.to_scipy()
        assert (np.linalg.norm(r.to_dense() - A @ z.to_dense())
                < np.linalg.norm(r.to_dense()))
